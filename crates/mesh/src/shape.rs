//! Rank ↔ coordinate arithmetic for N-dimensional device meshes.
//!
//! One row-major layout rule shared by every consumer — [`crate::GridNd`]'s
//! axis subgroups, [`crate::Topology`]'s node placement, and `perf`'s
//! projected group geometry — so the mapping can never drift between them.
//! Ranks are row-major over the dims: the **last** axis is contiguous,
//! axis `i` has stride `dims[i+1] · dims[i+2] · …`. A `[q, q]` mesh
//! therefore keeps the classic `rank = row · q + col` layout, and a
//! `[p, q, d]` Tesseract mesh reduces to it exactly when `d = 1`.

/// The shape of an N-dimensional device mesh: `[d0, d1, ..., dk]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MeshShape {
    dims: Vec<usize>,
}

impl MeshShape {
    /// A mesh of the given per-axis extents. Every extent must be ≥ 1.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "mesh needs at least one axis");
        assert!(
            dims.iter().all(|&d| d > 0),
            "mesh axes must be non-empty: {dims:?}"
        );
        MeshShape {
            dims: dims.to_vec(),
        }
    }

    /// Number of axes.
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Extent of one axis.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// All extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of devices (product of the extents).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Never true — every axis has extent ≥ 1.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Rank distance between consecutive coordinates of `axis`
    /// (`dims[axis+1] · … · dims[k]`; the last axis has stride 1).
    pub fn stride(&self, axis: usize) -> usize {
        self.dims[axis + 1..].iter().product()
    }

    /// Row-major rank of a coordinate tuple.
    pub fn rank_of(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.ndim(), "coordinate arity mismatch");
        coords.iter().zip(&self.dims).fold(0, |acc, (&c, &d)| {
            assert!(c < d, "coordinate {c} out of range for axis of {d}");
            acc * d + c
        })
    }

    /// Coordinate tuple of a rank (inverse of [`MeshShape::rank_of`]).
    pub fn coords_of(&self, rank: usize) -> Vec<usize> {
        assert!(
            rank < self.len(),
            "rank {rank} outside mesh of {}",
            self.len()
        );
        let mut rest = rank;
        let mut coords = vec![0; self.ndim()];
        for (i, &d) in self.dims.iter().enumerate().rev() {
            coords[i] = rest % d;
            rest /= d;
        }
        coords
    }

    /// The ranks obtained by sweeping `axis` through its extent while every
    /// other coordinate stays at `coords` — the membership of `coords`'s
    /// axis subgroup, ordered by the `axis` coordinate.
    pub fn axis_ranks(&self, coords: &[usize], axis: usize) -> Vec<usize> {
        assert!(axis < self.ndim(), "axis {axis} out of range");
        let mut c = coords.to_vec();
        (0..self.dims[axis])
            .map(|v| {
                c[axis] = v;
                self.rank_of(&c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_d_layout_is_row_major() {
        let s = MeshShape::new(&[3, 3]);
        assert_eq!(s.len(), 9);
        assert_eq!(s.rank_of(&[1, 2]), 5);
        assert_eq!(s.coords_of(5), vec![1, 2]);
        assert_eq!(s.stride(0), 3);
        assert_eq!(s.stride(1), 1);
    }

    #[test]
    fn depth_one_reduces_to_the_2d_layout() {
        // The bitwise-compatibility cornerstone: [q, q, 1] ranks equal
        // [q, q] ranks for every (row, col).
        let flat = MeshShape::new(&[4, 4]);
        let deep = MeshShape::new(&[4, 4, 1]);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(flat.rank_of(&[r, c]), deep.rank_of(&[r, c, 0]));
            }
        }
    }

    #[test]
    fn round_trips_every_rank() {
        for dims in [vec![2, 3], vec![2, 2, 2], vec![1, 4, 2], vec![5]] {
            let s = MeshShape::new(&dims);
            for rank in 0..s.len() {
                assert_eq!(s.rank_of(&s.coords_of(rank)), rank, "dims={dims:?}");
            }
        }
    }

    #[test]
    fn axis_ranks_sweep_one_axis() {
        let s = MeshShape::new(&[2, 2, 2]);
        // Device (1, 0, 1) = rank 5.
        assert_eq!(s.rank_of(&[1, 0, 1]), 5);
        assert_eq!(s.axis_ranks(&[1, 0, 1], 0), vec![1, 5]); // vary row
        assert_eq!(s.axis_ranks(&[1, 0, 1], 1), vec![5, 7]); // vary col
        assert_eq!(s.axis_ranks(&[1, 0, 1], 2), vec![4, 5]); // vary depth
    }

    #[test]
    fn axis_ranks_are_arithmetic_with_the_axis_stride() {
        let s = MeshShape::new(&[2, 3, 4]);
        for rank in 0..s.len() {
            let coords = s.coords_of(rank);
            for axis in 0..s.ndim() {
                let ranks = s.axis_ranks(&coords, axis);
                let stride = s.stride(axis);
                for w in ranks.windows(2) {
                    assert_eq!(w[1] - w[0], stride);
                }
                assert!(ranks.contains(&rank));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_of_rejects_out_of_range_coords() {
        MeshShape::new(&[2, 2]).rank_of(&[0, 2]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_zero_extent() {
        MeshShape::new(&[2, 0]);
    }
}
