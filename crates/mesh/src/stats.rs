//! Communication accounting.
//!
//! Every point-to-point transfer and every collective participation is
//! recorded per device. The `perf` crate replays [`OpRecord`]s through the
//! α-β cost model (each collective's cost depends only on its kind, group
//! size and payload — exactly the granularity of the paper's Eqs. 4–5), and
//! uses [`LinkRecord`]s for the topology/contention analysis of Figure 8.
//!
//! Records double as the raw material of the structured tracer: each record
//! carries the [`trace`] span that was open when it was made (`span` 0 when
//! the run was untraced), and [`OpRecord`]s carry the recording `rank`, so
//! attribution survives [`CommLog::merge`].

/// Kind of collective a device participated in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommOp {
    Broadcast,
    Reduce,
    AllReduce,
    AllGather,
    ReduceScatter,
    Barrier,
}

impl CommOp {
    /// Every collective kind paired with its stable display name, in
    /// declaration order. The **single source of truth** for these strings:
    /// stats display, the trace event kind (`OpMeta.kind`), and the metrics
    /// wait-histogram labels all go through [`CommOp::name`], which reads
    /// this table.
    pub const KINDS: [(CommOp, &'static str); 6] = [
        (CommOp::Broadcast, "Broadcast"),
        (CommOp::Reduce, "Reduce"),
        (CommOp::AllReduce, "AllReduce"),
        (CommOp::AllGather, "AllGather"),
        (CommOp::ReduceScatter, "ReduceScatter"),
        (CommOp::Barrier, "Barrier"),
    ];

    /// Stable display name, also used as the trace event kind and the
    /// metrics histogram label.
    pub fn name(self) -> &'static str {
        Self::KINDS[self as usize].1
    }

    /// Inverse of [`CommOp::name`].
    pub fn from_name(name: &str) -> Option<CommOp> {
        Self::KINDS
            .into_iter()
            .find(|(_, n)| *n == name)
            .map(|(op, _)| op)
    }
}

/// One collective participation: the payload is the *logical* tensor size in
/// `f32` elements (what the paper's `B` denotes), not the wire traffic — the
/// wire traffic is in the link records.
///
/// `group_first`/`group_stride` encode the group's membership for arithmetic
/// groups (mesh rows have stride 1, mesh columns stride `q`, the world
/// stride 1); a stride of 0 marks an irregular group. The `perf` crate uses
/// this to pick intra- vs inter-node bandwidth when replaying a log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpRecord {
    pub op: CommOp,
    /// The schedule this participation ran (see [`crate::CollAlgo`]);
    /// `perf` prices the record with the matching per-algorithm formula.
    pub algo: crate::CollAlgo,
    pub group_size: usize,
    pub elems: usize,
    pub group_first: usize,
    pub group_stride: usize,
    /// The device that recorded this participation (preserved by
    /// [`CommLog::merge`], so merged logs keep per-rank attribution).
    pub rank: usize,
    /// The innermost [`trace`] span open when the op ran (0 = untraced).
    pub span: u32,
}

impl OpRecord {
    /// Reconstructs the member ranks for arithmetic groups; `None` when the
    /// group was irregular (stride 0 with more than one member).
    pub fn group_ranks(&self) -> Option<Vec<usize>> {
        if self.group_size == 1 {
            return Some(vec![self.group_first]);
        }
        if self.group_stride == 0 {
            return None;
        }
        Some(
            (0..self.group_size)
                .map(|i| self.group_first + i * self.group_stride)
                .collect(),
        )
    }
}

/// One point-to-point transfer on a concrete link. The sender is `from`, so
/// link attribution survives [`CommLog::merge`] by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkRecord {
    pub from: usize,
    pub to: usize,
    pub elems: usize,
    /// The innermost [`trace`] span open when the send ran (0 = untraced).
    pub span: u32,
}

/// Per-device log of all communication in a mesh run.
#[derive(Clone, Debug)]
pub struct CommLog {
    pub rank: usize,
    pub ops: Vec<OpRecord>,
    pub links: Vec<LinkRecord>,
    /// Running total of link elements; kept incrementally so the tracer can
    /// take O(1) before/after snapshots around each collective.
    wire: usize,
}

/// The `(size, first, stride)` encoding of a group's membership; stride 0
/// marks an irregular (non-arithmetic) group.
pub(crate) fn group_shape(group: &crate::Group) -> (usize, usize, usize) {
    let ranks = group.ranks();
    let stride = if ranks.len() > 1 {
        let s = ranks[1].wrapping_sub(ranks[0]);
        let arithmetic = ranks.windows(2).all(|w| w[1].wrapping_sub(w[0]) == s);
        if arithmetic {
            s
        } else {
            0
        }
    } else {
        0
    };
    (ranks.len(), ranks[0], stride)
}

/// Records a collective participation, encoding the group as
/// first/stride when its membership is arithmetic. Shared by both
/// [`crate::Communicator`] backends so their op streams are byte-identical.
pub(crate) fn record_group_op(
    log: &mut CommLog,
    op: CommOp,
    algo: crate::CollAlgo,
    group: &crate::Group,
    elems: usize,
) {
    let (size, first, stride) = group_shape(group);
    log.record_op(op, algo, size, elems, first, stride);
}

impl CommLog {
    pub fn new(rank: usize) -> Self {
        CommLog {
            rank,
            ops: Vec::new(),
            links: Vec::new(),
            wire: 0,
        }
    }

    pub(crate) fn record_op(
        &mut self,
        op: CommOp,
        algo: crate::CollAlgo,
        group_size: usize,
        elems: usize,
        group_first: usize,
        group_stride: usize,
    ) {
        self.ops.push(OpRecord {
            op,
            algo,
            group_size,
            elems,
            group_first,
            group_stride,
            rank: self.rank,
            span: trace::current_span(),
        });
    }

    pub(crate) fn record_link(&mut self, from: usize, to: usize, elems: usize) {
        self.wire += elems;
        self.links.push(LinkRecord {
            from,
            to,
            elems,
            span: trace::current_span(),
        });
    }

    /// Total `f32` elements this device pushed onto the fabric. O(1).
    pub fn total_link_elems(&self) -> usize {
        debug_assert_eq!(self.wire, self.links.iter().map(|l| l.elems).sum::<usize>());
        self.wire
    }

    /// Total logical payload across collectives of a given kind.
    pub fn op_elems(&self, op: CommOp) -> usize {
        self.ops
            .iter()
            .filter(|r| r.op == op)
            .map(|r| r.elems)
            .sum()
    }

    /// Number of collectives of a given kind this device joined.
    pub fn op_count(&self, op: CommOp) -> usize {
        self.ops.iter().filter(|r| r.op == op).count()
    }

    /// Merges another device's log into this one (used for whole-mesh
    /// summaries). Per-rank attribution is preserved: every merged
    /// [`OpRecord`] keeps its recording `rank` and every [`LinkRecord`] its
    /// `from` rank, so a merged log can still be split or filtered by
    /// source device.
    pub fn merge(&mut self, other: &CommLog) {
        self.ops.extend_from_slice(&other.ops);
        self.links.extend_from_slice(&other.links);
        self.wire += other.wire;
    }

    /// The subset of a (possibly merged) log recorded by `rank`, in
    /// original program order.
    pub fn ops_by_rank(&self, rank: usize) -> impl Iterator<Item = &OpRecord> {
        self.ops.iter().filter(move |r| r.rank == rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_ranks_reconstruction() {
        let row = OpRecord {
            op: CommOp::Broadcast,
            algo: crate::CollAlgo::Tree,
            group_size: 3,
            elems: 10,
            group_first: 6,
            group_stride: 1,
            rank: 0,
            span: 0,
        };
        assert_eq!(row.group_ranks(), Some(vec![6, 7, 8]));
        let col = OpRecord {
            group_stride: 3,
            group_first: 1,
            ..row
        };
        assert_eq!(col.group_ranks(), Some(vec![1, 4, 7]));
        let irregular = OpRecord {
            group_stride: 0,
            ..row
        };
        assert_eq!(irregular.group_ranks(), None);
        let singleton = OpRecord {
            group_size: 1,
            group_stride: 0,
            group_first: 5,
            ..row
        };
        assert_eq!(singleton.group_ranks(), Some(vec![5]));
    }

    #[test]
    fn op_accounting() {
        use crate::CollAlgo;
        let mut log = CommLog::new(0);
        log.record_op(CommOp::Broadcast, CollAlgo::Tree, 4, 100, 0, 1);
        log.record_op(CommOp::Broadcast, CollAlgo::Chain, 4, 50, 0, 1);
        log.record_op(CommOp::AllReduce, CollAlgo::Ring, 16, 200, 0, 1);
        assert_eq!(log.op_elems(CommOp::Broadcast), 150);
        assert_eq!(log.op_count(CommOp::Broadcast), 2);
        assert_eq!(log.op_elems(CommOp::AllReduce), 200);
        assert_eq!(log.op_count(CommOp::Reduce), 0);
    }

    #[test]
    fn link_accounting_and_merge() {
        let mut a = CommLog::new(0);
        a.record_link(0, 1, 10);
        let mut b = CommLog::new(1);
        b.record_link(1, 0, 5);
        a.merge(&b);
        assert_eq!(a.total_link_elems(), 15);
        assert_eq!(a.links.len(), 2);
    }

    #[test]
    fn merge_preserves_per_rank_attribution() {
        let mut a = CommLog::new(0);
        a.record_op(CommOp::Broadcast, crate::CollAlgo::Tree, 4, 100, 0, 1);
        let mut b = CommLog::new(1);
        b.record_op(CommOp::Reduce, crate::CollAlgo::Tree, 4, 50, 0, 1);
        b.record_link(1, 0, 50);
        a.merge(&b);
        // Ops remember who recorded them...
        assert_eq!(a.ops[0].rank, 0);
        assert_eq!(a.ops[1].rank, 1);
        assert_eq!(
            a.ops_by_rank(1).map(|r| r.elems).collect::<Vec<_>>(),
            vec![50]
        );
        // ...and links always carried their sender.
        assert_eq!(a.links[0].from, 1);
    }

    #[test]
    fn name_round_trips() {
        for (op, _) in CommOp::KINDS {
            assert_eq!(CommOp::from_name(op.name()), Some(op));
        }
        assert_eq!(CommOp::from_name("Gossip"), None);
    }

    #[test]
    fn kinds_table_matches_discriminants() {
        // `name()` indexes KINDS by discriminant; the table must stay in
        // declaration order.
        for (i, (op, _)) in CommOp::KINDS.iter().enumerate() {
            assert_eq!(*op as usize, i, "KINDS out of declaration order");
        }
    }
}
