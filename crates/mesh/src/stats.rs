//! Communication accounting.
//!
//! Every point-to-point transfer and every collective participation is
//! recorded per device. The `perf` crate replays [`OpRecord`]s through the
//! α-β cost model (each collective's cost depends only on its kind, group
//! size and payload — exactly the granularity of the paper's Eqs. 4–5), and
//! uses [`LinkRecord`]s for the topology/contention analysis of Figure 8.

/// Kind of collective a device participated in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommOp {
    Broadcast,
    Reduce,
    AllReduce,
    AllGather,
    ReduceScatter,
    Barrier,
}

/// One collective participation: the payload is the *logical* tensor size in
/// `f32` elements (what the paper's `B` denotes), not the wire traffic — the
/// wire traffic is in the link records.
///
/// `group_first`/`group_stride` encode the group's membership for arithmetic
/// groups (mesh rows have stride 1, mesh columns stride `q`, the world
/// stride 1); a stride of 0 marks an irregular group. The `perf` crate uses
/// this to pick intra- vs inter-node bandwidth when replaying a log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpRecord {
    pub op: CommOp,
    pub group_size: usize,
    pub elems: usize,
    pub group_first: usize,
    pub group_stride: usize,
}

impl OpRecord {
    /// Reconstructs the member ranks for arithmetic groups; `None` when the
    /// group was irregular (stride 0 with more than one member).
    pub fn group_ranks(&self) -> Option<Vec<usize>> {
        if self.group_size == 1 {
            return Some(vec![self.group_first]);
        }
        if self.group_stride == 0 {
            return None;
        }
        Some(
            (0..self.group_size)
                .map(|i| self.group_first + i * self.group_stride)
                .collect(),
        )
    }
}

/// One point-to-point transfer on a concrete link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkRecord {
    pub from: usize,
    pub to: usize,
    pub elems: usize,
}

/// Per-device log of all communication in a mesh run.
#[derive(Clone, Debug)]
pub struct CommLog {
    pub rank: usize,
    pub ops: Vec<OpRecord>,
    pub links: Vec<LinkRecord>,
}

/// Records a collective participation, encoding the group as
/// first/stride when its membership is arithmetic. Shared by both
/// [`crate::Communicator`] backends so their op streams are byte-identical.
pub(crate) fn record_group_op(log: &mut CommLog, op: CommOp, group: &crate::Group, elems: usize) {
    let ranks = group.ranks();
    let stride = if ranks.len() > 1 {
        let s = ranks[1].wrapping_sub(ranks[0]);
        let arithmetic = ranks.windows(2).all(|w| w[1].wrapping_sub(w[0]) == s);
        if arithmetic {
            s
        } else {
            0
        }
    } else {
        0
    };
    log.record_op(op, ranks.len(), elems, ranks[0], stride);
}

impl CommLog {
    pub fn new(rank: usize) -> Self {
        CommLog {
            rank,
            ops: Vec::new(),
            links: Vec::new(),
        }
    }

    pub(crate) fn record_op(
        &mut self,
        op: CommOp,
        group_size: usize,
        elems: usize,
        group_first: usize,
        group_stride: usize,
    ) {
        self.ops.push(OpRecord {
            op,
            group_size,
            elems,
            group_first,
            group_stride,
        });
    }

    pub(crate) fn record_link(&mut self, from: usize, to: usize, elems: usize) {
        self.links.push(LinkRecord { from, to, elems });
    }

    /// Total `f32` elements this device pushed onto the fabric.
    pub fn total_link_elems(&self) -> usize {
        self.links.iter().map(|l| l.elems).sum()
    }

    /// Total logical payload across collectives of a given kind.
    pub fn op_elems(&self, op: CommOp) -> usize {
        self.ops
            .iter()
            .filter(|r| r.op == op)
            .map(|r| r.elems)
            .sum()
    }

    /// Number of collectives of a given kind this device joined.
    pub fn op_count(&self, op: CommOp) -> usize {
        self.ops.iter().filter(|r| r.op == op).count()
    }

    /// Merges another device's log into this one (used for whole-mesh
    /// summaries).
    pub fn merge(&mut self, other: &CommLog) {
        self.ops.extend_from_slice(&other.ops);
        self.links.extend_from_slice(&other.links);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_ranks_reconstruction() {
        let row = OpRecord {
            op: CommOp::Broadcast,
            group_size: 3,
            elems: 10,
            group_first: 6,
            group_stride: 1,
        };
        assert_eq!(row.group_ranks(), Some(vec![6, 7, 8]));
        let col = OpRecord {
            group_stride: 3,
            group_first: 1,
            ..row
        };
        assert_eq!(col.group_ranks(), Some(vec![1, 4, 7]));
        let irregular = OpRecord {
            group_stride: 0,
            ..row
        };
        assert_eq!(irregular.group_ranks(), None);
        let singleton = OpRecord {
            group_size: 1,
            group_stride: 0,
            group_first: 5,
            ..row
        };
        assert_eq!(singleton.group_ranks(), Some(vec![5]));
    }

    #[test]
    fn op_accounting() {
        let mut log = CommLog::new(0);
        log.record_op(CommOp::Broadcast, 4, 100, 0, 1);
        log.record_op(CommOp::Broadcast, 4, 50, 0, 1);
        log.record_op(CommOp::AllReduce, 16, 200, 0, 1);
        assert_eq!(log.op_elems(CommOp::Broadcast), 150);
        assert_eq!(log.op_count(CommOp::Broadcast), 2);
        assert_eq!(log.op_elems(CommOp::AllReduce), 200);
        assert_eq!(log.op_count(CommOp::Reduce), 0);
    }

    #[test]
    fn link_accounting_and_merge() {
        let mut a = CommLog::new(0);
        a.record_link(0, 1, 10);
        let mut b = CommLog::new(1);
        b.record_link(1, 0, 5);
        a.merge(&b);
        assert_eq!(a.total_link_elems(), 15);
        assert_eq!(a.links.len(), 2);
    }
}
