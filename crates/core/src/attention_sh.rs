//! The **rejected** attention partition of Section 3.2.1, implemented for
//! real so the design choice can be measured rather than asserted.
//!
//! "A natural idea is to partition along the dimensions s and h. … Although
//! we can get the right result, this method will introduce a huge
//! communication overhead as the total size of A is `bns²`."
//!
//! Here each head's `[s, d]` Q/K/V are `q × q`-blocked (sequence × head-dim).
//! Per (batch, head):
//!
//! 1. `A = QKᵀ` runs as Algorithm 2 → `A` lands as `[s/q, s/q]` blocks;
//! 2. softmax normalises across the mesh **row** (the last dimension of `A`
//!    is divided — exactly the paper's "normalization must be applied within
//!    rows"), reusing the same partial-reduction primitives as the
//!    distributed cross-entropy;
//! 3. `context = A·V` runs as Algorithm 1 — and this is where the `bns²`
//!    tensor hits the wire: every iteration broadcasts `A` panels.
//!
//! The adopted `(b, h)` partition keeps all of this local. The integration
//! test `rejected_partition_comm_blowup_is_real` quantifies the difference
//! from executed communication logs.

use mesh::{Communicator, Grid2d};
use serial::ModelConfig;
use summa::{collect_blocks, distribute, summa_nn, summa_nt};
use tensor::loss::{partial_row_max, partial_sumexp};
use tensor::Tensor;

/// Distributed softmax over the last dimension of an `[s/q, s/q]` block
/// whose full rows span the mesh row group.
fn softmax_rows_2d<C: Communicator>(grid: &Grid2d<C>, scores: &Tensor) -> Tensor {
    let mut m = partial_row_max(scores);
    grid.ctx().all_reduce_max(grid.row_group(), &mut m);
    let mut se = partial_sumexp(scores, &m);
    grid.ctx().all_reduce(grid.row_group(), &mut se);
    let cols = scores.cols();
    let mut out = scores.clone();
    for (r, row) in out.as_mut_slice().chunks_mut(cols).enumerate() {
        let mx = m[r];
        let inv = 1.0 / se[r];
        for v in row.iter_mut() {
            *v = (*v - mx).exp() * inv;
        }
    }
    out
}

/// Attention under the rejected `(s, h)` partition.
///
/// `q_full`, `k_full`, `v_full` are the *full* `[b·s, h]` projections (as
/// the serial reference produces); each device slices its own blocks — the
/// layout bookkeeping is not the point of this module, the communication
/// pattern is. Returns the full `[b·s, h]` context on every device.
pub fn attention_sh_forward<C: Communicator>(
    grid: &Grid2d<C>,
    cfg: &ModelConfig,
    q_full: &Tensor,
    k_full: &Tensor,
    v_full: &Tensor,
) -> Tensor {
    let (b, s, n, d) = (cfg.batch, cfg.seq, cfg.heads, cfg.head_dim());
    let q = grid.q();
    assert_eq!(s % q, 0, "s must divide by q for the (s,h) partition");
    assert_eq!(
        d % q,
        0,
        "head dim must divide by q for the (s,h) partition"
    );
    let scale = 1.0 / (d as f32).sqrt();

    let mut ctxt = Tensor::zeros(&[b * s, n * d]);
    for bi in 0..b {
        for head in 0..n {
            // This head's [s, d] matrices.
            let qh = q_full.block(bi * s, head * d, s, d);
            let kh = k_full.block(bi * s, head * d, s, d);
            let vh = v_full.block(bi * s, head * d, s, d);
            let (ql, kl, vl) = (
                distribute(grid, &qh),
                distribute(grid, &kh),
                distribute(grid, &vh),
            );

            // A = QKᵀ (Algorithm 2), then scale + distributed softmax.
            let mut a = summa_nt(grid, &ql, &kl);
            a.scale(scale);
            let a = softmax_rows_2d(grid, &a);

            // context = A·V (Algorithm 1): the bns² tensor goes on the wire.
            let out_block = summa_nn(grid, &a, &vl);

            // Reassemble for the caller (test harness convenience).
            let blocks = grid
                .ctx()
                .all_gather(&grid.slice_group(), out_block.as_slice());
            let tensors: Vec<Tensor> = blocks
                .chunks(out_block.len())
                .map(|c| Tensor::from_vec(&[s / q, d / q], c.to_vec()))
                .collect();
            let full = collect_blocks(&tensors, q);
            ctxt.set_block(bi * s, head * d, &full);
        }
    }
    ctxt
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::{CommOp, Mesh2d};
    use serial::attention_forward;
    use tensor::{assert_close, Rng};

    fn cfg() -> ModelConfig {
        ModelConfig {
            batch: 2,
            seq: 4,
            hidden: 8,
            heads: 2,
            vocab: 16,
            layers: 1,
            causal: false,
        }
    }

    #[test]
    fn rejected_partition_still_computes_the_right_answer() {
        // The paper concedes "we can get the right result" — verify it.
        let c = cfg();
        let mut rng = Rng::new(0);
        let q = Tensor::randn(&[c.tokens(), c.hidden], 0.8, &mut rng);
        let k = Tensor::randn(&[c.tokens(), c.hidden], 0.8, &mut rng);
        let v = Tensor::randn(&[c.tokens(), c.hidden], 0.8, &mut rng);
        let (expect, _) = attention_forward(&c, &q, &k, &v);
        let outs = Mesh2d::run(2, |g| attention_sh_forward(g, &c, &q, &k, &v));
        for o in &outs {
            assert_close(o.as_slice(), expect.as_slice(), 1e-4, 1e-3);
        }
    }

    #[test]
    fn score_tensor_traffic_matches_the_closed_form() {
        // Per (batch, head) and per device, the SUMMA panel payload is
        // 2(s·d + s²)/q: K and V panels (s·d terms) plus the A reduce and
        // A broadcast (the s² terms the paper objects to). The adopted
        // (b, h) partition moves *zero* attention-internal traffic.
        let comm_at = |s: usize| {
            let c = ModelConfig { seq: s, ..cfg() };
            let mut rng = Rng::new(1);
            let q = Tensor::randn(&[c.tokens(), c.hidden], 0.8, &mut rng);
            let k = Tensor::randn(&[c.tokens(), c.hidden], 0.8, &mut rng);
            let v = Tensor::randn(&[c.tokens(), c.hidden], 0.8, &mut rng);
            let (_, logs) = Mesh2d::run_with_logs(2, |g| attention_sh_forward(g, &c, &q, &k, &v));
            logs[0]
                .ops
                .iter()
                .filter(|o| matches!(o.op, CommOp::Broadcast | CommOp::Reduce))
                .map(|o| o.elems)
                .sum::<usize>()
        };
        let c = cfg();
        let d = c.head_dim();
        let q_side = 2usize;
        let expect = |s: usize| c.batch * c.heads * 2 * (s * d + s * s) / q_side;
        let c4 = comm_at(4);
        let c8 = comm_at(8);
        let c16 = comm_at(16);
        assert_eq!(c4, expect(4));
        assert_eq!(c8, expect(8));
        assert_eq!(c16, expect(16));
        // The s² component quadruples while the s·d component only doubles,
        // so the growth factor climbs from 3x toward 4x as s grows.
        assert!(c8 >= 3 * c4, "score traffic must dominate: {c4} -> {c8}");
        assert!(
            c16 * 10 >= 33 * c8,
            "growth must keep accelerating: {c8} -> {c16}"
        );
    }
}
