//! Per-device 2D parameter blocks, sliced from the canonical full matrices.

use crate::layernorm2d::LayerNorm2d;
use crate::linear2d::Linear2d;
use mesh::{Communicator, Grid2d};
use serial::LayerParams;
use tensor::Tensor;

/// Slices device `(i, j)`'s block of the fused QKV weight, preserving head
/// alignment: the local `[h/q, 3h/q]` block is
/// `[Wq(i, j-cols) | Wk(i, j-cols) | Wv(i, j-cols)]`, so that after the
/// SUMMA product the local output columns split cleanly into this device's
/// `n/q` heads of Q, K and V.
fn slice_qkv_block(w_qkv: &Tensor, h: usize, q: usize, i: usize, j: usize) -> Tensor {
    let (rb, cb) = (h / q, h / q);
    let mut out = Tensor::zeros(&[rb, 3 * cb]);
    for part in 0..3 {
        let block = w_qkv.block(i * rb, part * h + j * cb, rb, cb);
        out.set_block(0, part * cb, &block);
    }
    out
}

fn slice_qkv_bias(b_qkv: &[f32], h: usize, q: usize, j: usize) -> Vec<f32> {
    let cb = h / q;
    let mut out = Vec::with_capacity(3 * cb);
    for part in 0..3 {
        out.extend_from_slice(&b_qkv[part * h + j * cb..part * h + (j + 1) * cb]);
    }
    out
}

/// One layer's parameters as held by a single device of the mesh.
#[derive(Clone, Debug)]
pub struct Layer2dParams {
    pub ln1: LayerNorm2d,
    /// `[h/q, 3h/q]`, permuted QKV layout (see `slice_qkv_block` above).
    pub qkv: Linear2d,
    /// `[h/q, h/q]` attention output projection.
    pub out: Linear2d,
    pub ln2: LayerNorm2d,
    /// `[h/q, 4h/q]`.
    pub fc1: Linear2d,
    /// `[4h/q, h/q]`.
    pub fc2: Linear2d,
}

impl Layer2dParams {
    /// Slices the canonical full layer parameters for this device.
    pub fn from_full<C: Communicator>(grid: &Grid2d<C>, full: &LayerParams) -> Self {
        let h = full.w_out.rows();
        let (q, i, j) = (grid.q(), grid.row(), grid.col());
        let qkv_w = slice_qkv_block(&full.w_qkv, h, q, i, j);
        let qkv_b = if i == 0 {
            Some(slice_qkv_bias(&full.b_qkv, h, q, j))
        } else {
            None
        };
        Layer2dParams {
            ln1: LayerNorm2d::from_full(grid, &full.ln1_g, &full.ln1_b),
            qkv: Linear2d::new(qkv_w, qkv_b),
            out: Linear2d::from_full(grid, &full.w_out, &full.b_out),
            ln2: LayerNorm2d::from_full(grid, &full.ln2_g, &full.ln2_b),
            fc1: Linear2d::from_full(grid, &full.w_fc1, &full.b_fc1),
            fc2: Linear2d::from_full(grid, &full.w_fc2, &full.b_fc2),
        }
    }

    /// Number of scalar parameters held locally (weights plus any hosted
    /// biases/affine slices).
    pub fn local_params(&self) -> usize {
        let lin = |l: &Linear2d| l.w.len() + l.bias.as_ref().map_or(0, Vec::len);
        let ln = |l: &LayerNorm2d| {
            l.gamma.as_ref().map_or(0, Vec::len) + l.beta.as_ref().map_or(0, Vec::len)
        };
        lin(&self.qkv)
            + lin(&self.out)
            + lin(&self.fc1)
            + lin(&self.fc2)
            + ln(&self.ln1)
            + ln(&self.ln2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::Mesh2d;
    use serial::LayerParams;

    #[test]
    fn qkv_block_head_alignment() {
        let h = 8;
        let q = 2;
        let full = LayerParams::init(0, 0, h);
        // Device (0,1)'s local Q columns are full Wq columns 4..8.
        let b01 = slice_qkv_block(&full.w_qkv, h, q, 0, 1);
        for r in 0..h / q {
            for c in 0..h / q {
                assert_eq!(b01.at(r, c), full.w_qkv.at(r, 4 + c)); // Q
                assert_eq!(b01.at(r, h / q + c), full.w_qkv.at(r, h + 4 + c)); // K
                assert_eq!(b01.at(r, 2 * (h / q) + c), full.w_qkv.at(r, 2 * h + 4 + c));
                // V
            }
        }
    }

    #[test]
    fn weight_blocks_partition_params_exactly() {
        // Summing local_params over the mesh = total layer params.
        let h = 8;
        let q = 2;
        let full = LayerParams::init(1, 0, h);
        let f = full.clone();
        let locals = Mesh2d::run(q, move |g| Layer2dParams::from_full(g, &f).local_params());
        let total: usize = locals.iter().sum();
        assert_eq!(total, full.num_params());
    }

    #[test]
    fn bias_hosted_only_on_row0() {
        let h = 8;
        let q = 2;
        let full = LayerParams::init(2, 0, h);
        let f = full.clone();
        let has_bias = Mesh2d::run(q, move |g| {
            let p = Layer2dParams::from_full(g, &f);
            p.qkv.bias.is_some() && p.fc1.bias.is_some() && p.ln1.gamma.is_some()
        });
        assert_eq!(has_bias, vec![true, true, false, false]);
    }
}
