//! Distributed checkpointing: gathering a 2D-sharded model back into the
//! canonical (serial) parameter form on one device, and rebuilding a
//! sharded model from canonical parameters.
//!
//! The canonical form is `serial::ModelParams` — the same structure the
//! deterministic initialiser produces — so a gathered checkpoint can be
//! saved as JSON, loaded into the serial reference, resharded onto a
//! *different* mesh size, or handed to the Megatron implementation.

use crate::layernorm2d::LayerNorm2d;
use crate::linear2d::Linear2d;
use crate::model::OptimusModel;
use crate::params2d::Layer2dParams;
use mesh::{Communicator, Grid2d};
use serial::{LayerParams, ModelParams};
use tensor::Tensor;

/// Gathers the `q × q` blocks of one matrix to mesh position (0,0).
/// Returns `Some(full)` there, `None` elsewhere.
fn gather_matrix<C: Communicator>(
    grid: &Grid2d<C>,
    local: &Tensor,
    full_rows: usize,
    full_cols: usize,
) -> Option<Tensor> {
    // Gather within this device's 2D slice: on a [q, q, d] mesh every depth
    // slice holds a full parameter replica, so slice 0's (0,0) device is the
    // canonical root and deeper slices gather redundant (identical) copies.
    let mesh = grid.slice_group();
    let root_rank = mesh.rank_of(0);
    let flat = grid.ctx().gather(&mesh, 0, local.as_slice());
    if grid.ctx().rank() != root_rank {
        return None;
    }
    let q = grid.q();
    let (br, bc) = (full_rows / q, full_cols / q);
    assert_eq!(flat.len(), full_rows * full_cols, "gathered size mismatch");
    let blocks: Vec<Tensor> = flat
        .chunks(br * bc)
        .map(|c| Tensor::from_vec(&[br, bc], c.to_vec()))
        .collect();
    Some(Tensor::from_summa_blocks(&blocks, q))
}

/// Gathers a row-0-hosted vector (bias / LN affine) to mesh position (0,0).
/// Only mesh-row-0 devices participate; everyone else returns `None`.
fn gather_row0_vector<C: Communicator>(
    grid: &Grid2d<C>,
    local: Option<&Vec<f32>>,
) -> Option<Vec<f32>> {
    if grid.row() != 0 {
        assert!(local.is_none(), "non-row-0 device holds a hosted vector");
        return None;
    }
    let slice = local.expect("row-0 device missing its hosted vector");
    let gathered = grid.ctx().gather(grid.row_group(), 0, slice);
    if grid.col() == 0 {
        Some(gathered)
    } else {
        None
    }
}

/// Un-permutes a gathered fused-QKV matrix: block `(i, j)` of the gathered
/// matrix holds `[Wq_ij | Wk_ij | Wv_ij]`; the canonical layout is
/// `[Wq | Wk | Wv]` with contiguous thirds.
fn unpermute_qkv(fused: &Tensor, h: usize, q: usize) -> Tensor {
    let cb = h / q;
    let mut out = Tensor::zeros(&[h, 3 * h]);
    for part in 0..3 {
        for j in 0..q {
            let block = fused.block(0, j * 3 * cb + part * cb, h, cb);
            out.set_block(0, part * h + j * cb, &block);
        }
    }
    out
}

/// Un-permutes a gathered fused-QKV bias: per-column triples
/// `[bq_j | bk_j | bv_j]` → contiguous thirds.
fn unpermute_qkv_bias(fused: &[f32], h: usize, q: usize) -> Vec<f32> {
    let cb = h / q;
    let mut out = vec![0.0f32; 3 * h];
    for part in 0..3 {
        for j in 0..q {
            let src = &fused[j * 3 * cb + part * cb..j * 3 * cb + (part + 1) * cb];
            out[part * h + j * cb..part * h + (j + 1) * cb].copy_from_slice(src);
        }
    }
    out
}

impl OptimusModel {
    /// Builds a device's shard from explicit canonical parameters (the
    /// inverse of [`OptimusModel::gather_params`]). The parameters must
    /// match `cfg.model()`'s dimensions.
    pub fn from_params<C: Communicator>(
        cfg: &crate::OptimusConfig,
        params: &ModelParams,
        grid: &Grid2d<C>,
    ) -> Self {
        cfg.validate();
        assert_eq!(grid.q(), cfg.q, "grid side must equal cfg.q");
        assert_eq!(
            params.embedding.rows(),
            cfg.vocab,
            "parameter dimensions must match the config"
        );
        assert_eq!(params.layers.len(), cfg.layers);
        OptimusModel {
            cfg: *cfg,
            table: params.embedding.summa_block(grid.row(), grid.col(), cfg.q),
            layers: params
                .layers
                .iter()
                .map(|lp| Layer2dParams::from_full(grid, lp))
                .collect(),
            final_ln: LayerNorm2d::from_full(grid, &params.final_ln_g, &params.final_ln_b),
            cls: None,
            meter: crate::MemMeter::new(),
        }
    }

    /// Gathers every parameter block to mesh position (0,0) and reassembles
    /// the canonical [`ModelParams`]. Returns `Some` only there. All mesh
    /// devices must call this together (it is a collective).
    pub fn gather_params<C: Communicator>(&self, grid: &Grid2d<C>) -> Option<ModelParams> {
        let (h, v) = (self.cfg.hidden, self.cfg.vocab);
        let q = self.cfg.q;
        let embedding = gather_matrix(grid, &self.table, v, h);

        let mut layers: Vec<Option<LayerParams>> = Vec::with_capacity(self.layers.len());
        for lp in &self.layers {
            let gather_lin = |lin: &Linear2d, rows: usize, cols: usize| {
                (
                    gather_matrix(grid, &lin.w, rows, cols),
                    gather_row0_vector(grid, lin.bias.as_ref()),
                )
            };
            let gather_ln = |ln: &LayerNorm2d| {
                (
                    gather_row0_vector(grid, ln.gamma.as_ref()),
                    gather_row0_vector(grid, ln.beta.as_ref()),
                )
            };
            let (ln1_g, ln1_b) = gather_ln(&lp.ln1);
            let (w_qkv_fused, b_qkv_fused) = gather_lin(&lp.qkv, h, 3 * h);
            let (w_out, b_out) = gather_lin(&lp.out, h, h);
            let (ln2_g, ln2_b) = gather_ln(&lp.ln2);
            let (w_fc1, b_fc1) = gather_lin(&lp.fc1, h, 4 * h);
            let (w_fc2, b_fc2) = gather_lin(&lp.fc2, 4 * h, h);

            layers.push(w_qkv_fused.map(|fused| LayerParams {
                ln1_g: ln1_g.expect("root holds all gathered vectors"),
                ln1_b: ln1_b.unwrap(),
                w_qkv: unpermute_qkv(&fused, h, q),
                b_qkv: unpermute_qkv_bias(&b_qkv_fused.unwrap(), h, q),
                w_out: w_out.unwrap(),
                b_out: b_out.unwrap(),
                ln2_g: ln2_g.unwrap(),
                ln2_b: ln2_b.unwrap(),
                w_fc1: w_fc1.unwrap(),
                b_fc1: b_fc1.unwrap(),
                w_fc2: w_fc2.unwrap(),
                b_fc2: b_fc2.unwrap(),
            }));
        }
        let final_g = gather_row0_vector(grid, self.final_ln.gamma.as_ref());
        let final_b = gather_row0_vector(grid, self.final_ln.beta.as_ref());

        embedding.map(|embedding| ModelParams {
            embedding,
            layers: layers.into_iter().map(|l| l.unwrap()).collect(),
            final_ln_g: final_g.unwrap(),
            final_ln_b: final_b.unwrap(),
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::{OptimusConfig, OptimusModel};
    use mesh::Mesh2d;
    use serial::{ModelParams, SerialModel};
    use tensor::Rng;

    fn data(cfg: &OptimusConfig, seed: u64) -> (Vec<usize>, Vec<usize>) {
        let mut rng = Rng::new(seed);
        let n = cfg.batch * cfg.seq;
        (
            (0..n).map(|_| rng.below(cfg.vocab)).collect(),
            (0..n).map(|_| rng.below(cfg.vocab)).collect(),
        )
    }

    #[test]
    fn gather_recovers_the_initial_parameters() {
        for q in [1usize, 2, 3] {
            let cfg = OptimusConfig::tiny(q);
            let gathered = Mesh2d::run(q, |g| {
                let m = OptimusModel::new(&cfg, 17, g);
                m.gather_params(g)
            });
            let full = ModelParams::init(17, &cfg.model());
            let got = gathered[0].as_ref().expect("root has the params");
            assert_eq!(got.embedding, full.embedding);
            assert_eq!(got.layers[0].w_qkv, full.layers[0].w_qkv);
            assert_eq!(got.layers[1].w_fc2, full.layers[1].w_fc2);
            assert_eq!(got.layers[0].b_qkv, full.layers[0].b_qkv);
            assert_eq!(got.final_ln_g, full.final_ln_g);
            for (i, slot) in gathered.iter().enumerate().skip(1) {
                assert!(slot.is_none(), "device {i} must not hold the params");
            }
        }
    }

    #[test]
    fn trained_gathered_params_match_serial_training() {
        let cfg = OptimusConfig::tiny(2);
        let (tokens, labels) = data(&cfg, 1);
        let gathered = Mesh2d::run(cfg.q, |g| {
            let mut m = OptimusModel::new(&cfg, 8, g);
            for _ in 0..3 {
                m.train_step(g, &tokens, &labels, 0.2);
            }
            m.gather_params(g)
        });
        let mut reference = SerialModel::new(cfg.model(), 8);
        for _ in 0..3 {
            reference.train_step(&tokens, &labels, 0.2);
        }
        let got = gathered[0].as_ref().unwrap();
        tensor::assert_close(
            got.embedding.as_slice(),
            reference.params.embedding.as_slice(),
            1e-4,
            1e-3,
        );
        tensor::assert_close(
            got.layers[1].w_qkv.as_slice(),
            reference.params.layers[1].w_qkv.as_slice(),
            1e-4,
            1e-3,
        );
        tensor::assert_close(
            &got.layers[0].b_fc1,
            &reference.params.layers[0].b_fc1,
            1e-4,
            1e-3,
        );
    }

    #[test]
    fn save_load_reshard_roundtrip() {
        // Train on a 2x2 mesh, gather, serialize, deserialize, reshard onto
        // a *3x3* mesh — the loss must be preserved exactly.
        let cfg2 = OptimusConfig {
            q: 2,
            batch: 6,
            seq: 4,
            hidden: 12,
            heads: 6,
            vocab: 18,
            layers: 2,
            causal: false,
            checkpoint: false,
            fused_attention: false,
        };
        let (tokens, labels) = data(&cfg2, 2);
        let gathered = Mesh2d::run(cfg2.q, |g| {
            let mut m = OptimusModel::new(&cfg2, 4, g);
            for _ in 0..2 {
                m.train_step(g, &tokens, &labels, 0.2);
            }
            (m.gather_params(g), m.lm_loss(g, &tokens, &labels))
        });
        let params = gathered[0].0.as_ref().unwrap();
        let loss_2x2 = gathered[0].1;

        let json = params.to_json().to_string();
        let loaded = ModelParams::from_json(&minjson::parse(&json).unwrap()).unwrap();

        let cfg3 = OptimusConfig { q: 3, ..cfg2 };
        let losses = Mesh2d::run(cfg3.q, |g| {
            let m = OptimusModel::from_params(&cfg3, &loaded, g);
            m.lm_loss(g, &tokens, &labels)
        });
        for l in &losses {
            assert!(
                (l - loss_2x2).abs() < 1e-4,
                "resharded loss {l} vs original {loss_2x2}"
            );
        }
    }
}
