//! 2D-distributed layer normalisation (paper Section 3.2.2).
//!
//! The hidden dimension spans a mesh row, so `Σx` and `Σx²` are summed
//! locally and **all-reduced along the row**; `x̂` and `1/√(Var+ε)` are saved
//! for backward. In backward, `Σ x̂·g` and `Σ g` get the same treatment. The
//! affine parameters γ, β are hosted by mesh row 0 (like biases, Fig. 5):
//! broadcast down columns in forward, gradients reduced back in backward.

use mesh::{Communicator, Grid2d};
use tensor::layernorm::{
    ln_affine, ln_backward_finish, ln_backward_partials, ln_finish, ln_param_grads,
    ln_partial_sums, LN_EPS,
};
use tensor::Tensor;

/// Layer-norm parameters: `Some` slices (length `h/q`) on mesh row 0.
#[derive(Clone, Debug)]
pub struct LayerNorm2d {
    pub gamma: Option<Vec<f32>>,
    pub beta: Option<Vec<f32>>,
}

/// Saved forward state for the backward pass.
pub struct Ln2dCache {
    pub xhat: Tensor,
    pub inv_std: Vec<f32>,
    /// The γ slice this column received in forward (reused in backward).
    pub gamma: Vec<f32>,
}

impl LayerNorm2d {
    /// Builds from full `[h]` parameter vectors, slicing column `j`.
    pub fn from_full<C: Communicator>(
        grid: &Grid2d<C>,
        gamma_full: &[f32],
        beta_full: &[f32],
    ) -> Self {
        if grid.row() == 0 {
            let w = gamma_full.len() / grid.q();
            LayerNorm2d {
                gamma: Some(gamma_full[grid.col() * w..(grid.col() + 1) * w].to_vec()),
                beta: Some(beta_full[grid.col() * w..(grid.col() + 1) * w].to_vec()),
            }
        } else {
            LayerNorm2d {
                gamma: None,
                beta: None,
            }
        }
    }

    /// Forward over the local `[rows/q, h/q]` block; `h_total` is the full
    /// hidden size.
    pub fn forward<C: Communicator>(
        &self,
        grid: &Grid2d<C>,
        x: &Tensor,
        h_total: usize,
    ) -> (Tensor, Ln2dCache) {
        // Parameters come down the column from row 0; non-root buffers are
        // pre-sized so the trace backend knows the payload length.
        let mut gamma = self.gamma.clone().unwrap_or_else(|| vec![0.0; x.cols()]);
        let mut beta = self.beta.clone().unwrap_or_else(|| vec![0.0; x.cols()]);
        grid.ctx().broadcast(grid.col_group(), 0, &mut gamma);
        grid.ctx().broadcast(grid.col_group(), 0, &mut beta);

        // Row-wise moments across the mesh row.
        let (mut s, mut s2) = ln_partial_sums(x);
        grid.ctx().all_reduce(grid.row_group(), &mut s);
        grid.ctx().all_reduce(grid.row_group(), &mut s2);
        let cache = ln_finish(x, &s, &s2, h_total, LN_EPS);
        let y = ln_affine(&cache.xhat, &gamma, &beta);
        (
            y,
            Ln2dCache {
                xhat: cache.xhat,
                inv_std: cache.inv_std,
                gamma,
            },
        )
    }

    /// Backward: returns `dx` and (on mesh row 0) the parameter gradients.
    pub fn backward<C: Communicator>(
        &self,
        grid: &Grid2d<C>,
        dy: &Tensor,
        cache: &Ln2dCache,
        h_total: usize,
    ) -> (Tensor, Option<Vec<f32>>, Option<Vec<f32>>) {
        let (dxhat, mut dgamma, mut dbeta) = ln_param_grads(dy, &cache.xhat, &cache.gamma);
        // Parameter grads go home to row 0.
        grid.ctx().reduce(grid.col_group(), 0, &mut dgamma);
        grid.ctx().reduce(grid.col_group(), 0, &mut dbeta);

        let (mut sum_gx, mut sum_g) = ln_backward_partials(&dxhat, &cache.xhat);
        grid.ctx().all_reduce(grid.row_group(), &mut sum_gx);
        grid.ctx().all_reduce(grid.row_group(), &mut sum_g);
        let dx = ln_backward_finish(
            &dxhat,
            &cache.xhat,
            &cache.inv_std,
            &sum_gx,
            &sum_g,
            h_total,
        );

        if grid.row() == 0 {
            (dx, Some(dgamma), Some(dbeta))
        } else {
            (dx, None, None)
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // explicit indices aid test diagnostics
mod tests {
    use super::*;
    use mesh::Mesh2d;
    use summa::{collect_blocks, distribute};
    use tensor::layernorm::{layer_norm_backward, layer_norm_forward};
    use tensor::{assert_close, Rng, Tensor};

    #[test]
    fn forward_matches_serial_layernorm() {
        for q in [1usize, 2, 3] {
            let h = 4 * q;
            let mut rng = Rng::new(0);
            let x = Tensor::randn(&[2 * q, h], 1.3, &mut rng);
            let gamma: Vec<f32> = (0..h).map(|i| 1.0 + 0.05 * i as f32).collect();
            let beta: Vec<f32> = (0..h).map(|i| -0.1 + 0.02 * i as f32).collect();
            let (y_ref, _) = layer_norm_forward(&x, &gamma, &beta, LN_EPS);
            let blocks = Mesh2d::run(q, |g| {
                let ln = LayerNorm2d::from_full(g, &gamma, &beta);
                ln.forward(g, &distribute(g, &x), h).0
            });
            assert_close(
                collect_blocks(&blocks, q).as_slice(),
                y_ref.as_slice(),
                1e-4,
                1e-4,
            );
        }
    }

    #[test]
    fn backward_matches_serial_layernorm() {
        let q = 2;
        let h = 4 * q;
        let mut rng = Rng::new(1);
        let x = Tensor::randn(&[2 * q, h], 1.0, &mut rng);
        let dy = Tensor::randn(&[2 * q, h], 1.0, &mut rng);
        let gamma: Vec<f32> = (0..h).map(|i| 1.0 + 0.05 * i as f32).collect();
        let beta = vec![0.0f32; h];
        let (_, cache_ref) = layer_norm_forward(&x, &gamma, &beta, LN_EPS);
        let (dx_ref, dg_ref, db_ref) = layer_norm_backward(&dy, &cache_ref, &gamma);

        let outs = Mesh2d::run(q, |g| {
            let ln = LayerNorm2d::from_full(g, &gamma, &beta);
            let (_, cache) = ln.forward(g, &distribute(g, &x), h);
            ln.backward(g, &distribute(g, &dy), &cache, h)
        });
        let dx: Vec<Tensor> = outs.iter().map(|(a, _, _)| a.clone()).collect();
        assert_close(
            collect_blocks(&dx, q).as_slice(),
            dx_ref.as_slice(),
            1e-4,
            1e-3,
        );
        let mut dg = Vec::new();
        let mut db = Vec::new();
        for j in 0..q {
            dg.extend(outs[j].1.as_ref().unwrap());
            db.extend(outs[j].2.as_ref().unwrap());
        }
        assert_close(&dg, &dg_ref, 1e-4, 1e-3);
        assert_close(&db, &db_ref, 1e-4, 1e-3);
        for rank in q..q * q {
            assert!(outs[rank].1.is_none());
        }
    }
}
