//! One 2D-parallel transformer layer (paper Fig. 4).
//!
//! Every activation between operations is a `[b/q·s, h/q]` block — nothing
//! is ever replicated. The four matmuls are SUMMA products; attention is
//! fully local because the partition is along batch and hidden (each device
//! owns `b/q` whole sequences and `n/q` whole heads, Section 3.2.1).

use crate::config::OptimusConfig;
use crate::layernorm2d::Ln2dCache;
use crate::params2d::Layer2dParams;
use mesh::{Communicator, Grid2d};
use serial::{
    attention_backward, attention_backward_recomputed, attention_ctx_only, attention_forward,
    AttnCache,
};
use tensor::ops::{gelu_backward, gelu_forward};
use tensor::Tensor;

/// Forward state saved for backward — all blocks are local `1/p` shares.
pub struct Layer2dCache {
    pub ln1: Ln2dCache,
    pub ln1_out: Tensor,
    pub q: Tensor,
    pub k: Tensor,
    pub v: Tensor,
    /// Attention probabilities — `None` under `fused_attention` (recomputed
    /// per head in backward, paper Section 6).
    pub attn: Option<AttnCache>,
    pub ctxt: Tensor,
    pub x1: Tensor,
    pub ln2: Ln2dCache,
    pub ln2_out: Tensor,
    pub f1: Tensor,
    pub g: Tensor,
}

impl Layer2dCache {
    /// Bytes of activation state this cache pins (for the memory meter).
    pub fn bytes(&self) -> usize {
        let t = |x: &Tensor| x.len() * 4;
        let probs: usize = self
            .attn
            .as_ref()
            .map_or(0, |a| a.probs.iter().map(|p| p.len() * 4).sum());
        t(&self.ln1.xhat)
            + self.ln1.inv_std.len() * 4
            + t(&self.ln1_out)
            + t(&self.q)
            + t(&self.k)
            + t(&self.v)
            + probs
            + t(&self.ctxt)
            + t(&self.x1)
            + t(&self.ln2.xhat)
            + self.ln2.inv_std.len() * 4
            + t(&self.ln2_out)
            + t(&self.f1)
            + t(&self.g)
    }
}

/// Device-local parameter gradients (bias/affine grads only on mesh row 0).
pub struct Layer2dGrads {
    pub ln1_g: Option<Vec<f32>>,
    pub ln1_b: Option<Vec<f32>>,
    pub w_qkv: Tensor,
    pub b_qkv: Option<Vec<f32>>,
    pub w_out: Tensor,
    pub b_out: Option<Vec<f32>>,
    pub ln2_g: Option<Vec<f32>>,
    pub ln2_b: Option<Vec<f32>>,
    pub w_fc1: Tensor,
    pub b_fc1: Option<Vec<f32>>,
    pub w_fc2: Tensor,
    pub b_fc2: Option<Vec<f32>>,
}

/// Layer forward over the local input block `x: [b/q·s, h/q]`.
pub fn layer2d_forward<C: Communicator>(
    grid: &Grid2d<C>,
    cfg: &OptimusConfig,
    p: &Layer2dParams,
    x: &Tensor,
) -> (Tensor, Layer2dCache) {
    let _span = trace::span_guard("fwd.layer2d");
    let local = cfg.local_view();
    let hb = cfg.local_cols();
    let rows = cfg.local_rows();
    assert_eq!(x.dims(), &[rows, hb], "bad local activation block");

    // Attention half.
    let (ln1_out, ln1) = p.ln1.forward(grid, x, cfg.hidden);
    let qkv = p.qkv.forward(grid, &ln1_out); // [rows, 3h/q], layout [Q|K|V]
    let q = qkv.block(0, 0, rows, hb);
    let k = qkv.block(0, hb, rows, hb);
    let v = qkv.block(0, 2 * hb, rows, hb);
    let (ctxt, attn) = if cfg.fused_attention {
        (attention_ctx_only(&local, &q, &k, &v), None)
    } else {
        let (c, a) = attention_forward(&local, &q, &k, &v);
        (c, Some(a))
    };
    let attn_out = p.out.forward(grid, &ctxt);
    let mut x1 = x.clone();
    x1.add_assign(&attn_out);

    // MLP half.
    let (ln2_out, ln2) = p.ln2.forward(grid, &x1, cfg.hidden);
    let f1 = p.fc1.forward(grid, &ln2_out);
    let g = gelu_forward(&f1);
    let f2 = p.fc2.forward(grid, &g);
    let mut y = x1.clone();
    y.add_assign(&f2);

    (
        y,
        Layer2dCache {
            ln1,
            ln1_out,
            q,
            k,
            v,
            attn,
            ctxt,
            x1,
            ln2,
            ln2_out,
            f1,
            g,
        },
    )
}

/// Layer backward: local output-gradient block in, local input-gradient
/// block and local parameter gradients out.
pub fn layer2d_backward<C: Communicator>(
    grid: &Grid2d<C>,
    cfg: &OptimusConfig,
    p: &Layer2dParams,
    cache: &Layer2dCache,
    dy: &Tensor,
) -> (Tensor, Layer2dGrads) {
    let _span = trace::span_guard("bwd.layer2d");
    let local = cfg.local_view();
    let hb = cfg.local_cols();
    let rows = cfg.local_rows();

    // MLP half.
    let (dg, dw_fc2, db_fc2) = p.fc2.backward(grid, &cache.g, dy);
    let df1 = gelu_backward(&dg, &cache.f1);
    let (dln2_out, dw_fc1, db_fc1) = p.fc1.backward(grid, &cache.ln2_out, &df1);
    let (dx1_ln, dln2_g, dln2_b) = p.ln2.backward(grid, &dln2_out, &cache.ln2, cfg.hidden);
    let mut dx1 = dy.clone();
    dx1.add_assign(&dx1_ln);

    // Attention half.
    let (dctxt, dw_out, db_out) = p.out.backward(grid, &cache.ctxt, &dx1);
    let (dq, dk, dv) = match &cache.attn {
        Some(attn) => attention_backward(&local, &dctxt, &cache.q, &cache.k, &cache.v, attn),
        None => attention_backward_recomputed(&local, &dctxt, &cache.q, &cache.k, &cache.v),
    };
    let mut dqkv = Tensor::zeros(&[rows, 3 * hb]);
    dqkv.set_block(0, 0, &dq);
    dqkv.set_block(0, hb, &dk);
    dqkv.set_block(0, 2 * hb, &dv);
    let (dln1_out, dw_qkv, db_qkv) = p.qkv.backward(grid, &cache.ln1_out, &dqkv);
    let (dx_ln, dln1_g, dln1_b) = p.ln1.backward(grid, &dln1_out, &cache.ln1, cfg.hidden);
    let mut dx = dx1;
    dx.add_assign(&dx_ln);

    (
        dx,
        Layer2dGrads {
            ln1_g: dln1_g,
            ln1_b: dln1_b,
            w_qkv: dw_qkv,
            b_qkv: db_qkv,
            w_out: dw_out,
            b_out: db_out,
            ln2_g: dln2_g,
            ln2_b: dln2_b,
            w_fc1: dw_fc1,
            b_fc1: db_fc1,
            w_fc2: dw_fc2,
            b_fc2: db_fc2,
        },
    )
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // explicit indices aid test diagnostics
mod tests {
    use super::*;
    use mesh::Mesh2d;
    use serial::{layer_backward, layer_forward, LayerParams};
    use summa::{collect_blocks, distribute};
    use tensor::{assert_close, Rng, Tensor};

    fn setup(q: usize) -> (OptimusConfig, LayerParams, Tensor, Tensor) {
        let cfg = OptimusConfig::tiny(q);
        let full = LayerParams::init(3, 0, cfg.hidden);
        let mut rng = Rng::new(4);
        let rows = cfg.batch * cfg.seq;
        let x = Tensor::randn(&[rows, cfg.hidden], 1.0, &mut rng);
        let dy = Tensor::randn(&[rows, cfg.hidden], 1.0, &mut rng);
        (cfg, full, x, dy)
    }

    #[test]
    fn forward_matches_serial_layer() {
        for q in [1usize, 2, 3] {
            let (cfg, full, x, _) = setup(q);
            let (y_ref, _) = layer_forward(&cfg.model(), &full, &x);
            let blocks = Mesh2d::run(q, |g| {
                let p = Layer2dParams::from_full(g, &full);
                layer2d_forward(g, &cfg, &p, &distribute(g, &x)).0
            });
            assert_close(
                collect_blocks(&blocks, q).as_slice(),
                y_ref.as_slice(),
                2e-4,
                1e-3,
            );
        }
    }

    #[test]
    fn backward_matches_serial_layer() {
        let q = 2;
        let (cfg, full, x, dy) = setup(q);
        let model_cfg = cfg.model();
        let (_, cache_ref) = layer_forward(&model_cfg, &full, &x);
        let (dx_ref, grads_ref) = layer_backward(&model_cfg, &full, &cache_ref, &dy);

        let outs = Mesh2d::run(q, |g| {
            let p = Layer2dParams::from_full(g, &full);
            let (_, cache) = layer2d_forward(g, &cfg, &p, &distribute(g, &x));
            layer2d_backward(g, &cfg, &p, &cache, &distribute(g, &dy))
        });
        let dx: Vec<Tensor> = outs.iter().map(|(a, _)| a.clone()).collect();
        assert_close(
            collect_blocks(&dx, q).as_slice(),
            dx_ref.as_slice(),
            2e-4,
            1e-3,
        );
        // Reassemble dW_out (plain SUMMA blocks) and compare.
        let dw_out: Vec<Tensor> = outs.iter().map(|(_, g)| g.w_out.clone()).collect();
        assert_close(
            collect_blocks(&dw_out, q).as_slice(),
            grads_ref.w_out.as_slice(),
            2e-4,
            1e-3,
        );
        // dW_fc1 as well.
        let dw_fc1: Vec<Tensor> = outs.iter().map(|(_, g)| g.w_fc1.clone()).collect();
        assert_close(
            collect_blocks(&dw_fc1, q).as_slice(),
            grads_ref.w_fc1.as_slice(),
            2e-4,
            1e-3,
        );
        // Bias grads concatenated across row 0 equal the serial gradient.
        let mut db_fc1 = Vec::new();
        for j in 0..q {
            db_fc1.extend(outs[j].1.b_fc1.as_ref().unwrap());
        }
        assert_close(&db_fc1, &grads_ref.b_fc1, 2e-4, 1e-3);
    }

    #[test]
    fn activations_are_fully_distributed() {
        // The local cache pins ~1/p of the serial activation volume: this is
        // the paper's core memory claim (Section 3.1.1).
        let q = 2;
        let (cfg, full, x, _) = setup(q);
        let sizes = Mesh2d::run(q, |g| {
            let p = Layer2dParams::from_full(g, &full);
            let (_, cache) = layer2d_forward(g, &cfg, &p, &distribute(g, &x));
            cache.bytes()
        });
        let rows = cfg.batch * cfg.seq;
        let serial_equiv = {
            // Same inventory, undistributed.
            let t = rows * cfg.hidden * 4;
            // xhat*2, ln_out*2, q,k,v, ctxt, x1, g = 10 tensors of [rows, h],
            // f1 + g are [rows, 4h] -> adjust: f1 (4h), g (4h).
            10 * t - 2 * t + 2 * 4 * t
                + 2 * rows * 4 // inv_std x2
                + cfg.batch * cfg.heads * cfg.seq * cfg.seq * 4 // probs
        };
        for s in &sizes {
            // Each device holds (1/p) of tensors and (1/p) of probs
            // (b/q sequences x n/q heads = bn/p score matrices).
            let ratio = serial_equiv as f64 / *s as f64;
            assert!(
                (3.0..=4.5).contains(&ratio),
                "expected ~p x reduction, got {ratio} (local {s} vs serial {serial_equiv})"
            );
        }
    }
}
