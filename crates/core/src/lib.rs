//! **Optimus** — the paper's contribution: 2D tensor parallelism for
//! transformers, built on SUMMA distributed matrix multiplication.
//!
//! In the 1D (Megatron) scheme every device holds the *whole* `[b·s, h]`
//! activation of every layer; Optimus partitions activations *and*
//! parameters into `q × q` blocks over a device mesh (`p = q²`), so per
//! device the activation footprint shrinks from `bsh` to `bsh/p`:
//!
//! * **SUMMA linear layers** ([`Linear2d`]) — all four matmuls of a
//!   transformer layer run as Algorithm 1 forward and Algorithms 2–3 in
//!   backward (the closed set of paper Eqs. 1–3). Biases live on mesh row 0,
//!   broadcast down columns in forward and reduced back in backward
//!   (Fig. 5).
//! * **2D self-attention** — activations are partitioned along *batch* and
//!   *hidden* (not sequence), so each device owns `b/q` sequences × `n/q`
//!   complete heads and `softmax(QKᵀ)V` is entirely local (Section 3.2.1);
//!   the rejected `(s, h)` partition would move the `b·n·s²` score tensor.
//! * **2D layer norm** ([`LayerNorm2d`]) — local `Σx`, `Σx²` all-reduced
//!   along mesh rows; `x̂` and `1/σ` saved for backward (Section 3.2.2).
//! * **2D embedding / LM head / cross-entropy** ([`embedding2d`]) — the
//!   embedding table is `q × q`-blocked; the lookup is SUMMA `C = AB` with
//!   an implicit one-hot `A`, the tied LM head is Algorithm 2, and the
//!   cross-entropy reduces log-sum-exp partials along mesh rows.
//! * **Memory management** ([`BufferPool`], [`MemMeter`], activation
//!   checkpointing in [`OptimusModel`]) — the Section 3.2.3 techniques:
//!   pre-allocated reusable buffers, per-layer recompute, immediate
//!   parameter update + gradient-buffer reset.
//!
//! Every layer and the full stem are verified element-wise against the
//! serial reference (same seed ⇒ same losses, same gradients) by this
//! crate's tests and the workspace integration tests.

pub mod attention_sh;
pub mod buffers;
pub mod checkpoint;
mod config;
pub mod dp;
pub mod embedding2d;
mod layer2d;
mod layernorm2d;
mod linear2d;
mod model;
mod params2d;

pub use buffers::{BufferPool, MemMeter};
pub use config::OptimusConfig;
pub use dp::{hybrid_layout, hybrid_train_step, hybrid_train_step_ef, hybrid_train_step_zero1};
pub use layer2d::{layer2d_backward, layer2d_forward, Layer2dCache, Layer2dGrads};
pub use layernorm2d::{LayerNorm2d, Ln2dCache};
pub use linear2d::Linear2d;
pub use model::{Model2dGrads, OptimusModel, TrainOutput};
pub use params2d::Layer2dParams;
