//! Optimus run configuration.

use serial::ModelConfig;

/// Hyperparameters of a 2D-parallel run on a `q × q` mesh.
#[derive(Clone, Copy, Debug)]
pub struct OptimusConfig {
    /// Mesh side; `p = q²` devices.
    pub q: usize,
    pub batch: usize,
    pub seq: usize,
    pub hidden: usize,
    pub heads: usize,
    pub vocab: usize,
    pub layers: usize,
    /// Causal (decoder) attention; the paper's benchmarks use `false`.
    pub causal: bool,
    /// Distributed activation checkpointing (Section 3.2.3): keep only each
    /// layer's input block, recompute the rest during backward.
    pub checkpoint: bool,
    /// Memory-lean ("fused") attention — the paper's Section 6 future-work
    /// direction: never cache the `[b, n, s, s]` attention probabilities;
    /// recompute them per head during backward.
    pub fused_attention: bool,
}

impl OptimusConfig {
    /// The equivalent single-device model (ground truth).
    pub fn model(&self) -> ModelConfig {
        ModelConfig {
            batch: self.batch,
            seq: self.seq,
            hidden: self.hidden,
            heads: self.heads,
            vocab: self.vocab,
            layers: self.layers,
            causal: self.causal,
        }
    }

    /// Validates the paper's divisibility requirements (`q | b`, `q | h`,
    /// `q | n`, `q | v`).
    pub fn validate(&self) {
        self.model().validate_2d(self.q);
    }

    /// Per-device view used inside the fully local attention: `b/q`
    /// sequences and `n/q` heads of unchanged head dimension.
    pub fn local_view(&self) -> ModelConfig {
        ModelConfig {
            batch: self.batch / self.q,
            seq: self.seq,
            hidden: self.hidden / self.q,
            heads: self.heads / self.q,
            vocab: self.vocab,
            layers: self.layers,
            causal: self.causal,
        }
    }

    /// Rows of the local activation block: `(b/q)·s`.
    pub fn local_rows(&self) -> usize {
        self.batch / self.q * self.seq
    }

    /// Columns of the local activation block: `h/q`.
    pub fn local_cols(&self) -> usize {
        self.hidden / self.q
    }

    /// This device's token slice (mesh row `i` owns batch block `i`,
    /// replicated across its row): `tokens[i·(b/q)·s .. (i+1)·(b/q)·s]`.
    pub fn local_tokens<'a>(&self, tokens: &'a [usize], mesh_row: usize) -> &'a [usize] {
        let rows = self.local_rows();
        assert_eq!(
            tokens.len(),
            self.batch * self.seq,
            "expected the full b*s token array"
        );
        &tokens[mesh_row * rows..(mesh_row + 1) * rows]
    }

    /// A tiny 2×2-mesh configuration used across tests.
    pub fn tiny(q: usize) -> Self {
        OptimusConfig {
            q,
            batch: 2 * q,
            seq: 4,
            hidden: 4 * q,
            heads: q,
            vocab: 6 * q,
            layers: 2,
            causal: false,
            checkpoint: false,
            fused_attention: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_validates_for_q2_and_q3() {
        OptimusConfig::tiny(2).validate();
        OptimusConfig::tiny(3).validate();
    }

    #[test]
    fn local_view_dimensions() {
        let c = OptimusConfig::tiny(2);
        let v = c.local_view();
        assert_eq!(v.batch, 2);
        assert_eq!(v.hidden, 4);
        assert_eq!(v.heads, 1);
        assert_eq!(v.head_dim(), c.model().head_dim());
        assert_eq!(c.local_rows(), 8);
        assert_eq!(c.local_cols(), 4);
    }

    #[test]
    fn local_tokens_slices_batch_blocks() {
        let c = OptimusConfig::tiny(2);
        let tokens: Vec<usize> = (0..c.batch * c.seq).collect();
        assert_eq!(c.local_tokens(&tokens, 0), &tokens[..8]);
        assert_eq!(c.local_tokens(&tokens, 1), &tokens[8..]);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn validate_rejects_indivisible_heads() {
        let mut c = OptimusConfig::tiny(2);
        c.heads = 3;
        c.validate();
    }
}
