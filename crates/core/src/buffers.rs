//! Memory management (paper Section 3.2.3): a size-classed buffer pool for
//! reusable gradient/activation blocks and a per-device memory meter.
//!
//! The paper pre-allocates five buffer families (workspace, forward,
//! backward, parameter-gradient, conjunction) so that a training step
//! performs no fresh allocations after warm-up. In this simulation the
//! SUMMA panel workspace lives in [`summa::Workspace`]; this module provides
//! the remaining two pieces:
//!
//! * [`BufferPool`] — recycles `Vec<f32>` buffers between layers (the
//!   "parameter gradient buffer can be reused" and "conjunction buffer"
//!   techniques). [`BufferPool::fresh_allocs`] proves steady-state reuse.
//! * [`MemMeter`] — tracks live activation bytes and their high-water mark,
//!   used to demonstrate the `p×` activation-memory reduction and the
//!   checkpointing ablation (Fig. 9's mechanism at simulation scale).

use std::collections::HashMap;

/// Recycling pool of `f32` buffers, keyed by exact length.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: HashMap<usize, Vec<Vec<f32>>>,
    /// Buffers created because the pool had none of the right size.
    pub fresh_allocs: usize,
    /// Buffers served from the free list.
    pub reuses: usize,
}

impl BufferPool {
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Takes a zeroed buffer of exactly `len` elements.
    pub fn acquire(&mut self, len: usize) -> Vec<f32> {
        if let Some(list) = self.free.get_mut(&len) {
            if let Some(mut buf) = list.pop() {
                self.reuses += 1;
                buf.fill(0.0);
                return buf;
            }
        }
        self.fresh_allocs += 1;
        vec![0.0; len]
    }

    /// Returns a buffer to the pool.
    pub fn release(&mut self, buf: Vec<f32>) {
        self.free.entry(buf.len()).or_default().push(buf);
    }

    /// Total elements currently parked in the pool.
    pub fn pooled_elems(&self) -> usize {
        self.free.iter().map(|(len, list)| len * list.len()).sum()
    }
}

/// Live-byte accounting with a high-water mark.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemMeter {
    current: usize,
    peak: usize,
}

impl MemMeter {
    pub fn new() -> Self {
        MemMeter::default()
    }

    /// Registers `bytes` of newly live data.
    pub fn alloc(&mut self, bytes: usize) {
        self.current += bytes;
        self.peak = self.peak.max(self.current);
    }

    /// Releases `bytes` of live data.
    pub fn free(&mut self, bytes: usize) {
        assert!(bytes <= self.current, "freeing more than allocated");
        self.current -= bytes;
    }

    /// Bytes currently live.
    pub fn current(&self) -> usize {
        self.current
    }

    /// High-water mark since construction (or last [`MemMeter::reset_peak`]).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Resets the peak to the current level.
    pub fn reset_peak(&mut self) {
        self.peak = self.current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuses_matching_sizes() {
        let mut pool = BufferPool::new();
        let a = pool.acquire(16);
        assert_eq!(pool.fresh_allocs, 1);
        pool.release(a);
        let b = pool.acquire(16);
        assert_eq!(pool.fresh_allocs, 1);
        assert_eq!(pool.reuses, 1);
        assert_eq!(b.len(), 16);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pool_distinguishes_sizes() {
        let mut pool = BufferPool::new();
        let a = pool.acquire(8);
        pool.release(a);
        let _b = pool.acquire(9);
        assert_eq!(pool.fresh_allocs, 2);
        assert_eq!(pool.pooled_elems(), 8);
    }

    #[test]
    fn reused_buffers_come_back_zeroed() {
        let mut pool = BufferPool::new();
        let mut a = pool.acquire(4);
        a.fill(7.0);
        pool.release(a);
        let b = pool.acquire(4);
        assert_eq!(b, vec![0.0; 4]);
    }

    #[test]
    fn meter_tracks_peak() {
        let mut m = MemMeter::new();
        m.alloc(100);
        m.alloc(50);
        m.free(120);
        m.alloc(10);
        assert_eq!(m.current(), 40);
        assert_eq!(m.peak(), 150);
        m.reset_peak();
        assert_eq!(m.peak(), 40);
    }

    #[test]
    #[should_panic(expected = "freeing more")]
    fn meter_rejects_overfree() {
        let mut m = MemMeter::new();
        m.alloc(10);
        m.free(11);
    }
}
