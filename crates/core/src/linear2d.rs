//! SUMMA linear layer with row-0 bias hosting (paper Fig. 5).

use mesh::{Communicator, Grid2d};
use summa::{summa_nn, summa_nt, summa_tn};
use tensor::ops::{bias_add, bias_grad};
use tensor::Tensor;

/// A dense layer distributed as `q × q` SUMMA blocks.
///
/// Device `(i, j)` holds weight block `[in/q, out/q]`. The bias slice for
/// output columns `j` is **hosted by the device in mesh row 0** and
/// broadcast down the column in forward; its gradient is reduced back to
/// row 0 in backward, so each bias parameter is updated on exactly one
/// device (Section 3.2.2, Fig. 5).
#[derive(Clone, Debug)]
pub struct Linear2d {
    /// Local weight block `[in/q, out/q]`.
    pub w: Tensor,
    /// `Some(slice)` on mesh row 0, `None` elsewhere.
    pub bias: Option<Vec<f32>>,
}

impl Linear2d {
    /// Wraps a local weight block and (on row 0) the local bias slice.
    pub fn new(w: Tensor, bias: Option<Vec<f32>>) -> Self {
        if let Some(b) = &bias {
            assert_eq!(b.len(), w.cols(), "bias slice must match local out dim");
        }
        Linear2d { w, bias }
    }

    /// Builds the local block of a full `[in, out]` weight and `[out]` bias.
    pub fn from_full<C: Communicator>(grid: &Grid2d<C>, w_full: &Tensor, b_full: &[f32]) -> Self {
        assert_eq!(w_full.cols(), b_full.len());
        let w = w_full.summa_block(grid.row(), grid.col(), grid.q());
        let bias = if grid.row() == 0 {
            let out_b = w_full.cols() / grid.q();
            Some(b_full[grid.col() * out_b..(grid.col() + 1) * out_b].to_vec())
        } else {
            None
        };
        Linear2d { w, bias }
    }

    /// `y = x W + b` over the mesh: SUMMA `C = AB` plus the column bias
    /// broadcast. `x: [rows/q, in/q]` local block.
    pub fn forward<C: Communicator>(&self, grid: &Grid2d<C>, x: &Tensor) -> Tensor {
        let _span = trace::span_guard("fwd.linear2d");
        let mut y = summa_nn(grid, x, &self.w);
        let mut bias_buf = match &self.bias {
            Some(b) => {
                debug_assert_eq!(grid.row(), 0);
                b.clone()
            }
            // Pre-sized so the trace backend knows the payload length.
            None => vec![0.0; y.cols()],
        };
        grid.ctx().broadcast(grid.col_group(), 0, &mut bias_buf);
        bias_add(&mut y, &bias_buf);
        y
    }

    /// Backward (paper Eq. 1 + Fig. 5b): returns
    /// `dx = dy Wᵀ` (Algorithm 2), `dw = xᵀ dy` (Algorithm 3), and the bias
    /// gradient — `Some` only on mesh row 0, where the bias lives.
    pub fn backward<C: Communicator>(
        &self,
        grid: &Grid2d<C>,
        x: &Tensor,
        dy: &Tensor,
    ) -> (Tensor, Tensor, Option<Vec<f32>>) {
        let _span = trace::span_guard("bwd.linear2d");
        let dx = summa_nt(grid, dy, &self.w);
        let dw = summa_tn(grid, x, dy);
        let mut db = bias_grad(dy);
        grid.ctx().reduce(grid.col_group(), 0, &mut db);
        let db = if grid.row() == 0 { Some(db) } else { None };
        (dx, dw, db)
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // explicit indices aid test diagnostics
mod tests {
    use super::*;
    use mesh::Mesh2d;
    use serial::Linear;
    use summa::{collect_blocks, distribute};
    use tensor::{assert_close, Rng, Tensor};

    fn setup(q: usize) -> (Tensor, Vec<f32>, Tensor, Tensor) {
        let mut rng = Rng::new(1);
        let w = Tensor::randn(&[4 * q, 2 * q], 0.5, &mut rng);
        let b: Vec<f32> = (0..2 * q).map(|i| 0.1 * i as f32).collect();
        let x = Tensor::randn(&[3 * q, 4 * q], 1.0, &mut rng);
        let dy = Tensor::randn(&[3 * q, 2 * q], 1.0, &mut rng);
        (w, b, x, dy)
    }

    #[test]
    fn forward_matches_serial_linear() {
        for q in [1usize, 2, 3] {
            let (w, b, x, _) = setup(q);
            let expect = Linear::new(w.clone(), b.clone()).forward(&x);
            let blocks = Mesh2d::run(q, |g| {
                let lin = Linear2d::from_full(g, &w, &b);
                lin.forward(g, &distribute(g, &x))
            });
            assert_close(
                collect_blocks(&blocks, q).as_slice(),
                expect.as_slice(),
                1e-4,
                1e-4,
            );
        }
    }

    #[test]
    fn backward_matches_serial_linear() {
        let q = 2;
        let (w, b, x, dy) = setup(q);
        let serial_lin = Linear::new(w.clone(), b.clone());
        let (dx_ref, dw_ref, db_ref) = serial_lin.backward(&x, &dy);
        let outs = Mesh2d::run(q, |g| {
            let lin = Linear2d::from_full(g, &w, &b);
            lin.backward(g, &distribute(g, &x), &distribute(g, &dy))
        });
        let dx: Vec<Tensor> = outs.iter().map(|(a, _, _)| a.clone()).collect();
        let dw: Vec<Tensor> = outs.iter().map(|(_, b, _)| b.clone()).collect();
        assert_close(
            collect_blocks(&dx, q).as_slice(),
            dx_ref.as_slice(),
            1e-4,
            1e-4,
        );
        assert_close(
            collect_blocks(&dw, q).as_slice(),
            dw_ref.as_slice(),
            1e-4,
            1e-4,
        );
        // Bias grads: only row 0 devices have them; concatenated by column
        // they equal the serial bias gradient.
        let mut db = Vec::new();
        for j in 0..q {
            db.extend(outs[j].2.as_ref().expect("row 0 must own bias grads"));
        }
        assert_close(&db, &db_ref, 1e-4, 1e-4);
        for rank in q..q * q {
            assert!(outs[rank].2.is_none(), "rank {rank} must not own bias");
        }
    }

    #[test]
    #[should_panic(expected = "bias slice")]
    fn rejects_wrong_bias_length() {
        Linear2d::new(Tensor::zeros(&[2, 3]), Some(vec![0.0; 2]));
    }
}
