//! Hybrid data-parallel × 2D tensor-parallel training.
//!
//! The paper notes (Section 1) that data-parallel techniques are orthogonal
//! to its model parallelism. This module composes them: `d` replicas, each a
//! `q × q` Optimus sub-mesh, train on disjoint batch shards; after the local
//! backward pass every *hosted* parameter gradient is averaged across the
//! replicas that host the same block (the data-parallel group = the devices
//! with equal mesh position across replicas). The result is numerically
//! identical to one Optimus run — or the serial model — on the full global
//! batch, which the integration tests assert.

use crate::model::{Model2dGrads, OptimusModel};
use mesh::{Communicator, ErrorFeedback, Grid2d, Group, WireDtype};

/// Computes this device's role in a `d × (q × q)` hybrid layout over a world
/// of `d·q²` devices: its replica's sub-mesh grid, its data-parallel group
/// (same mesh position across replicas) and its replica index.
pub fn hybrid_layout<C: Communicator>(
    ctx: &C,
    dp: usize,
    q: usize,
) -> (Grid2d<'_, C>, Group, usize) {
    let p = q * q;
    assert_eq!(
        ctx.world_size(),
        dp * p,
        "world must be dp * q^2 = {}",
        dp * p
    );
    let replica = ctx.rank() / p;
    let position = ctx.rank() % p;
    let grid = Grid2d::sub_mesh(ctx, q, replica * p);
    let dp_group = Group::new((0..dp).map(|r| r * p + position).collect());
    (grid, dp_group, replica)
}

fn visit_grads_mut(grads: &mut Model2dGrads, f: &mut impl FnMut(&mut [f32])) {
    fn opt(v: &mut Option<Vec<f32>>, f: &mut impl FnMut(&mut [f32])) {
        if let Some(v) = v {
            f(v);
        }
    }
    f(grads.table.as_mut_slice());
    opt(&mut grads.final_ln_g, f);
    opt(&mut grads.final_ln_b, f);
    for lg in &mut grads.layers {
        opt(&mut lg.ln1_g, f);
        opt(&mut lg.ln1_b, f);
        f(lg.w_qkv.as_mut_slice());
        opt(&mut lg.b_qkv, f);
        f(lg.w_out.as_mut_slice());
        opt(&mut lg.b_out, f);
        opt(&mut lg.ln2_g, f);
        opt(&mut lg.ln2_b, f);
        f(lg.w_fc1.as_mut_slice());
        opt(&mut lg.b_fc1, f);
        f(lg.w_fc2.as_mut_slice());
        opt(&mut lg.b_fc2, f);
    }
}

/// One hybrid training step over the **global** batch
/// (`dp · cfg.batch` sequences; `tokens`/`labels` have `dp·b·s` entries).
///
/// Each replica computes gradients on its shard, gradients are averaged
/// across the data-parallel group (ring all-reduce, the standard DP
/// pattern), and the update is applied locally. Returns the global mean
/// loss, identical on every device.
pub fn hybrid_train_step<C: Communicator>(
    model: &mut OptimusModel,
    grid: &Grid2d<C>,
    dp_group: &Group,
    replica: usize,
    tokens: &[usize],
    labels: &[usize],
    lr: f32,
) -> f32 {
    let cfg = model.cfg;
    let shard = cfg.batch * cfg.seq;
    let dp = dp_group.len();
    assert_eq!(tokens.len(), dp * shard, "expected the global token array");
    assert_eq!(labels.len(), dp * shard, "expected the global label array");

    let my_tokens = &tokens[replica * shard..(replica + 1) * shard];
    let my_labels = &labels[replica * shard..(replica + 1) * shard];
    let (local_loss, mut grads) = model.lm_grads(grid, my_tokens, my_labels);

    // Average gradients and the reported loss across replicas.
    let scale = 1.0 / dp as f32;
    visit_grads_mut(&mut grads, &mut |g| {
        grid.ctx().all_reduce(dp_group, g);
        for v in g.iter_mut() {
            *v *= scale;
        }
    });
    let mut loss = vec![local_loss * scale];
    grid.ctx().all_reduce(dp_group, &mut loss);

    model.apply_sgd(&grads, lr);
    loss[0]
}

/// [`hybrid_train_step`] with the gradient all-reduce traveling at an
/// explicit wire dtype under **error feedback** (Seide et al.; Karimireddy
/// et al.): each step sends the quantized `Q(g_t + e_{t-1})` and carries the
/// quantization error `e_t = (g_t + e_{t-1}) − Q(g_t + e_{t-1})` into the
/// next step instead of losing it, which restores SGD convergence under
/// biased compressors like bf16 rounding.
///
/// `ef` must be one [`ErrorFeedback`] per device, reused across steps — the
/// residual state *is* the algorithm. With `wire = WireDtype::F32` the
/// quantizer is the identity, the residual stays zero, and the step is
/// bitwise identical to [`hybrid_train_step`]. The loss all-reduce always
/// travels full-width (4 bytes of scalar is not worth a residual).
#[allow(clippy::too_many_arguments)]
pub fn hybrid_train_step_ef<C: Communicator>(
    model: &mut OptimusModel,
    grid: &Grid2d<C>,
    dp_group: &Group,
    replica: usize,
    tokens: &[usize],
    labels: &[usize],
    lr: f32,
    wire: WireDtype,
    ef: &mut ErrorFeedback,
) -> f32 {
    let cfg = model.cfg;
    let shard = cfg.batch * cfg.seq;
    let dp = dp_group.len();
    assert_eq!(tokens.len(), dp * shard, "expected the global token array");
    assert_eq!(labels.len(), dp * shard, "expected the global label array");

    let my_tokens = &tokens[replica * shard..(replica + 1) * shard];
    let my_labels = &labels[replica * shard..(replica + 1) * shard];
    let (local_loss, mut grads) = model.lm_grads(grid, my_tokens, my_labels);

    let scale = 1.0 / dp as f32;
    ef.begin_step();
    visit_grads_mut(&mut grads, &mut |g| {
        ef.apply(g, wire);
        grid.ctx().all_reduce_wire(dp_group, g, wire);
        for v in g.iter_mut() {
            *v *= scale;
        }
    });
    let mut loss = vec![local_loss * scale];
    grid.ctx().all_reduce(dp_group, &mut loss);

    model.apply_sgd(&grads, lr);
    loss[0]
}

/// Start of data-parallel shard `i` when splitting `n` elements across `d`
/// replicas (same convention as the ring collectives).
fn shard_start(n: usize, d: usize, i: usize) -> usize {
    n * i / d
}

/// One hybrid training step with **ZeRO stage-1 optimizer-state sharding**
/// (Rajbhandari et al., cited by the paper as an orthogonal technique).
///
/// Instead of every replica holding full Adam moments, replica `r` owns the
/// moments — and performs the update — for shard `r` of each parameter:
/// gradients are reduce-scattered across the DP group, each replica Adam-
/// updates its shard, and the fresh shards are broadcast back. Optimizer
/// memory per replica drops by `d×` while the math stays identical to
/// full-state data-parallel Adam (asserted by tests).
pub fn hybrid_train_step_zero1<C: Communicator>(
    model: &mut OptimusModel,
    grid: &Grid2d<C>,
    dp_group: &Group,
    replica: usize,
    tokens: &[usize],
    labels: &[usize],
    opt: &mut tensor::optim::AdamSet,
) -> f32 {
    let cfg = model.cfg;
    let shard = cfg.batch * cfg.seq;
    let d = dp_group.len();
    assert_eq!(tokens.len(), d * shard, "expected the global token array");
    assert_eq!(labels.len(), d * shard, "expected the global label array");

    let my_tokens = &tokens[replica * shard..(replica + 1) * shard];
    let my_labels = &labels[replica * shard..(replica + 1) * shard];
    let (local_loss, grads) = model.lm_grads(grid, my_tokens, my_labels);

    let ctx = grid.ctx();
    let scale = 1.0 / d as f32;
    opt.begin_step();
    model.visit_params_grads(&grads, &mut |param, grad| {
        let n = param.len();
        // Reduce-scatter the gradient: replica r ends with the summed shard r.
        let mut g = grad.to_vec();
        let mut my_shard = ctx.reduce_scatter(dp_group, &mut g);
        for v in &mut my_shard {
            *v *= scale;
        }
        // Adam-update only the owned shard (sharded optimizer state).
        let (s0, s1) = (shard_start(n, d, replica), shard_start(n, d, replica + 1));
        opt.apply(&mut param[s0..s1], &my_shard);
        // Redistribute the fresh shards (the ZeRO all-gather).
        for r in 0..d {
            let (r0, r1) = (shard_start(n, d, r), shard_start(n, d, r + 1));
            let mut buf = if r == replica {
                param[r0..r1].to_vec()
            } else {
                // Pre-sized so the trace backend knows the payload length.
                vec![0.0; r1 - r0]
            };
            ctx.broadcast(dp_group, r, &mut buf);
            param[r0..r1].copy_from_slice(&buf);
        }
    });

    let mut loss = vec![local_loss * scale];
    ctx.all_reduce(dp_group, &mut loss);
    loss[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptimusConfig;
    use mesh::Mesh;
    use serial::{ModelConfig, SerialModel};
    use tensor::Rng;

    fn tp_cfg(per_replica_batch: usize) -> OptimusConfig {
        OptimusConfig {
            q: 2,
            batch: per_replica_batch,
            seq: 4,
            hidden: 8,
            heads: 2,
            vocab: 16,
            layers: 2,
            causal: false,
            checkpoint: false,
            fused_attention: false,
        }
    }

    fn data(n: usize, vocab: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
        let mut rng = Rng::new(seed);
        (
            (0..n).map(|_| rng.below(vocab)).collect(),
            (0..n).map(|_| rng.below(vocab)).collect(),
        )
    }

    #[test]
    fn layout_partitions_the_world() {
        let (dp, q) = (2usize, 2usize);
        let out = Mesh::run(dp * q * q, |ctx| {
            let (grid, dp_group, replica) = hybrid_layout(ctx, dp, q);
            (replica, grid.row(), grid.col(), dp_group.ranks().to_vec())
        });
        // Rank 5 = replica 1, local position 1 -> row 0, col 1; its DP
        // group pairs it with rank 1.
        assert_eq!(out[5], (1, 0, 1, vec![1, 5]));
        assert_eq!(out[0], (0, 0, 0, vec![0, 4]));
    }

    #[test]
    fn hybrid_matches_serial_on_the_global_batch() {
        let (dp, q) = (2usize, 2usize);
        let per_replica = 2;
        let cfg = tp_cfg(per_replica);
        let global_batch = dp * per_replica;
        let (tokens, labels) = data(global_batch * cfg.seq, cfg.vocab, 1);

        // Serial reference on the *global* batch.
        let serial_cfg = ModelConfig {
            batch: global_batch,
            seq: cfg.seq,
            hidden: cfg.hidden,
            heads: cfg.heads,
            vocab: cfg.vocab,
            layers: cfg.layers,
            causal: false,
        };
        let mut reference = SerialModel::new(serial_cfg, 5);
        let ref_losses: Vec<f32> = (0..4)
            .map(|_| reference.train_step(&tokens, &labels, 0.2))
            .collect();

        let losses = Mesh::run(dp * q * q, |ctx| {
            let (grid, dp_group, replica) = hybrid_layout(ctx, dp, q);
            let mut model = OptimusModel::new(&cfg, 5, &grid);
            (0..4)
                .map(|_| {
                    hybrid_train_step(&mut model, &grid, &dp_group, replica, &tokens, &labels, 0.2)
                })
                .collect::<Vec<f32>>()
        });
        for dev in &losses {
            for (a, b) in dev.iter().zip(&ref_losses) {
                assert!((a - b).abs() < 2e-3, "hybrid={a} serial={b}");
            }
        }
    }

    #[test]
    fn zero1_matches_serial_adam_on_the_global_batch() {
        let (dp, q) = (2usize, 2usize);
        let per_replica = 2;
        let cfg = tp_cfg(per_replica);
        let global_batch = dp * per_replica;
        let (tokens, labels) = data(global_batch * cfg.seq, cfg.vocab, 3);
        let lr = 0.02;

        let serial_cfg = ModelConfig {
            batch: global_batch,
            seq: cfg.seq,
            hidden: cfg.hidden,
            heads: cfg.heads,
            vocab: cfg.vocab,
            layers: cfg.layers,
            causal: false,
        };
        let mut reference = SerialModel::new(serial_cfg, 5);
        let mut ref_opt = tensor::optim::AdamSet::new(lr);
        let ref_losses: Vec<f32> = (0..4)
            .map(|_| reference.train_step_adam(&tokens, &labels, &mut ref_opt))
            .collect();

        let losses = Mesh::run(dp * q * q, |ctx| {
            let (grid, dp_group, replica) = hybrid_layout(ctx, dp, q);
            let mut model = OptimusModel::new(&cfg, 5, &grid);
            let mut opt = tensor::optim::AdamSet::new(lr);
            (0..4)
                .map(|_| {
                    hybrid_train_step_zero1(
                        &mut model, &grid, &dp_group, replica, &tokens, &labels, &mut opt,
                    )
                })
                .collect::<Vec<f32>>()
        });
        for dev in &losses {
            for (a, b) in dev.iter().zip(&ref_losses) {
                assert!((a - b).abs() < 2e-3, "zero1={a} serial={b}");
            }
        }
    }

    #[test]
    fn zero1_shards_the_optimizer_state() {
        let (dp, q) = (2usize, 2usize);
        let cfg = tp_cfg(2);
        let (tokens, labels) = data(dp * cfg.batch * cfg.seq, cfg.vocab, 4);
        let bytes = Mesh::run(dp * q * q, |ctx| {
            let (grid, dp_group, replica) = hybrid_layout(ctx, dp, q);
            let mut model = OptimusModel::new(&cfg, 5, &grid);
            let mut opt = tensor::optim::AdamSet::new(0.01);
            hybrid_train_step_zero1(
                &mut model, &grid, &dp_group, replica, &tokens, &labels, &mut opt,
            );
            opt.state_bytes()
        });
        // All replicas' shards together hold exactly 8 bytes per global
        // parameter — d x less per replica than full-state DP-Adam.
        let total: usize = bytes.iter().sum();
        let model_cfg = cfg.model();
        assert_eq!(total, model_cfg.total_params() * 8);
        // And each DP pair splits its blocks roughly in half.
        let pair_total = bytes[0] + bytes[q * q];
        assert!(
            bytes[0] < pair_total * 6 / 10,
            "shard not balanced: {bytes:?}"
        );
    }

    #[test]
    fn ef_step_at_f32_is_bitwise_identical_to_plain_hybrid() {
        let (dp, q) = (2usize, 2usize);
        let cfg = tp_cfg(2);
        let (tokens, labels) = data(dp * cfg.batch * cfg.seq, cfg.vocab, 6);
        let run = |ef_path: bool| {
            Mesh::run(dp * q * q, |ctx| {
                let (grid, dp_group, replica) = hybrid_layout(ctx, dp, q);
                let mut model = OptimusModel::new(&cfg, 9, &grid);
                let mut ef = mesh::ErrorFeedback::new();
                let losses: Vec<f32> = (0..3)
                    .map(|_| {
                        if ef_path {
                            hybrid_train_step_ef(
                                &mut model,
                                &grid,
                                &dp_group,
                                replica,
                                &tokens,
                                &labels,
                                0.1,
                                mesh::WireDtype::F32,
                                &mut ef,
                            )
                        } else {
                            hybrid_train_step(
                                &mut model, &grid, &dp_group, replica, &tokens, &labels, 0.1,
                            )
                        }
                    })
                    .collect();
                (losses, model.table)
            })
        };
        let plain = run(false);
        let ef = run(true);
        for (rank, ((pl, pt), (el, et))) in plain.iter().zip(&ef).enumerate() {
            assert_eq!(pl, el, "losses diverged on rank {rank}");
            assert_eq!(
                pt.as_slice(),
                et.as_slice(),
                "parameters diverged on rank {rank}"
            );
        }
    }

    #[test]
    fn ef_bf16_gradient_sync_tracks_the_f32_loss_curve() {
        // Error feedback carries bf16 rounding error forward, so training
        // loss must track the full-width run closely (documented tolerance:
        // bf16 keeps 8 mantissa bits -> per-step gradient error <= 2^-8
        // relative; over a few steps the loss gap stays within 2e-2).
        let (dp, q) = (2usize, 2usize);
        let cfg = tp_cfg(2);
        let (tokens, labels) = data(dp * cfg.batch * cfg.seq, cfg.vocab, 8);
        let run = |wire: mesh::WireDtype| {
            Mesh::run(dp * q * q, |ctx| {
                let (grid, dp_group, replica) = hybrid_layout(ctx, dp, q);
                let mut model = OptimusModel::new(&cfg, 11, &grid);
                let mut ef = mesh::ErrorFeedback::new();
                (0..6)
                    .map(|_| {
                        hybrid_train_step_ef(
                            &mut model, &grid, &dp_group, replica, &tokens, &labels, 0.1, wire,
                            &mut ef,
                        )
                    })
                    .collect::<Vec<f32>>()
            })
        };
        let full = run(mesh::WireDtype::F32);
        let half = run(mesh::WireDtype::Bf16);
        for (a, b) in full[0].iter().zip(&half[0]) {
            assert!((a - b).abs() < 2e-2, "f32={a} bf16+ef={b}");
        }
        // Both runs must actually learn.
        assert!(half[0].last().unwrap() < &(half[0][0] - 1e-3));
    }

    #[test]
    fn replicas_stay_in_sync() {
        let (dp, q) = (2usize, 2usize);
        let cfg = tp_cfg(2);
        let (tokens, labels) = data(dp * cfg.batch * cfg.seq, cfg.vocab, 2);
        let tables = Mesh::run(dp * q * q, |ctx| {
            let (grid, dp_group, replica) = hybrid_layout(ctx, dp, q);
            let mut model = OptimusModel::new(&cfg, 7, &grid);
            for _ in 0..3 {
                hybrid_train_step(&mut model, &grid, &dp_group, replica, &tokens, &labels, 0.1);
            }
            model.table
        });
        // Same mesh position across replicas -> identical parameter blocks.
        for pos in 0..q * q {
            assert_eq!(
                tables[pos].as_slice(),
                tables[q * q + pos].as_slice(),
                "position {pos} diverged across replicas"
            );
        }
    }
}
