//! The full Optimus model: 2D embedding → N 2D layers → 2D final layer
//! norm → tied LM head (Algorithm 2) → row-parallel cross-entropy, with
//! distributed activation checkpointing and the paper's immediate-update
//! training step.

use crate::buffers::MemMeter;
use crate::config::OptimusConfig;
use crate::embedding2d::{
    ce2d, embed2d_backward, embed2d_forward, lm_head2d_backward, lm_head2d_forward,
};
use crate::layer2d::{layer2d_backward, layer2d_forward, Layer2dGrads};
use crate::layernorm2d::LayerNorm2d;
use crate::params2d::Layer2dParams;
use mesh::{Communicator, Grid2d};
use tensor::Tensor;

/// Device-local gradients for everything this device owns.
pub struct Model2dGrads {
    pub table: Tensor,
    pub layers: Vec<Layer2dGrads>,
    pub final_ln_g: Option<Vec<f32>>,
    pub final_ln_b: Option<Vec<f32>>,
}

impl Model2dGrads {
    /// `self += other` — used by gradient accumulation.
    pub fn accumulate(&mut self, other: &Model2dGrads) {
        fn add_opt(a: &mut Option<Vec<f32>>, b: &Option<Vec<f32>>) {
            match (a, b) {
                (Some(av), Some(bv)) => {
                    for (x, y) in av.iter_mut().zip(bv) {
                        *x += y;
                    }
                }
                (None, None) => {}
                _ => panic!("gradient hosting mismatch in accumulate"),
            }
        }
        self.table.add_assign(&other.table);
        add_opt(&mut self.final_ln_g, &other.final_ln_g);
        add_opt(&mut self.final_ln_b, &other.final_ln_b);
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.w_qkv.add_assign(&b.w_qkv);
            a.w_out.add_assign(&b.w_out);
            a.w_fc1.add_assign(&b.w_fc1);
            a.w_fc2.add_assign(&b.w_fc2);
            add_opt(&mut a.ln1_g, &b.ln1_g);
            add_opt(&mut a.ln1_b, &b.ln1_b);
            add_opt(&mut a.b_qkv, &b.b_qkv);
            add_opt(&mut a.b_out, &b.b_out);
            add_opt(&mut a.ln2_g, &b.ln2_g);
            add_opt(&mut a.ln2_b, &b.ln2_b);
            add_opt(&mut a.b_fc1, &b.b_fc1);
            add_opt(&mut a.b_fc2, &b.b_fc2);
        }
    }

    /// Scales every gradient by `s` (e.g. `1/k` after accumulating `k`
    /// microbatches).
    pub fn scale(&mut self, s: f32) {
        fn scale_opt(a: &mut Option<Vec<f32>>, s: f32) {
            if let Some(v) = a {
                for x in v.iter_mut() {
                    *x *= s;
                }
            }
        }
        self.table.scale(s);
        scale_opt(&mut self.final_ln_g, s);
        scale_opt(&mut self.final_ln_b, s);
        for g in &mut self.layers {
            g.w_qkv.scale(s);
            g.w_out.scale(s);
            g.w_fc1.scale(s);
            g.w_fc2.scale(s);
            scale_opt(&mut g.ln1_g, s);
            scale_opt(&mut g.ln1_b, s);
            scale_opt(&mut g.b_qkv, s);
            scale_opt(&mut g.b_out, s);
            scale_opt(&mut g.ln2_g, s);
            scale_opt(&mut g.ln2_b, s);
            scale_opt(&mut g.b_fc1, s);
            scale_opt(&mut g.b_fc2, s);
        }
    }
}

/// Result of a detailed training step.
#[derive(Clone, Copy, Debug)]
pub struct TrainOutput {
    /// Global mean loss (identical on every device).
    pub loss: f32,
    /// High-water mark of live activation bytes on this device during the
    /// step — the quantity Fig. 9's max-batch search is about.
    pub peak_activation_bytes: usize,
}

/// One device's shard of the Optimus model.
pub struct OptimusModel {
    pub cfg: OptimusConfig,
    /// Embedding table block `[v/q, h/q]` (tied with the LM head).
    pub table: Tensor,
    pub layers: Vec<Layer2dParams>,
    pub final_ln: LayerNorm2d,
    /// Sentence-classification head block `[h/q, c/q]` (the second branch
    /// of the paper's Fig. 1), present after
    /// [`OptimusModel::with_classifier`].
    pub cls: Option<crate::linear2d::Linear2d>,
    /// Activation-byte accounting for the most recent step.
    pub meter: MemMeter,
}

fn tensor_bytes(t: &Tensor) -> usize {
    t.len() * 4
}

impl OptimusModel {
    /// Builds this device's shard by slicing the canonical full parameters
    /// generated deterministically from `seed`.
    pub fn new<C: Communicator>(cfg: &OptimusConfig, seed: u64, grid: &Grid2d<C>) -> Self {
        let full = serial::ModelParams::init(seed, &cfg.model());
        OptimusModel::from_params(cfg, &full, grid)
    }

    /// Adds the sentence-classification branch (Fig. 1): a `[h, c]` head
    /// applied to the first token's hidden state of every sequence, blocked
    /// like every other parameter. Requires `q | num_classes`.
    pub fn with_classifier<C: Communicator>(
        mut self,
        grid: &Grid2d<C>,
        seed: u64,
        num_classes: usize,
    ) -> Self {
        assert_eq!(
            num_classes % self.cfg.q,
            0,
            "classes {num_classes} must be divisible by q={}",
            self.cfg.q
        );
        let full = tensor::init::init_matrix(
            seed,
            tensor::init::param_ids::CLS_HEAD,
            &[self.cfg.hidden, num_classes],
            tensor::init::WEIGHT_STD,
        );
        let bias = vec![0.0f32; num_classes];
        self.cls = Some(crate::linear2d::Linear2d::from_full(grid, &full, &bias));
        self
    }

    /// Pools the first token of each local sequence: `[b/q, h/q]`.
    fn pool_first_token(&self, hidden: &Tensor) -> Tensor {
        let s = self.cfg.seq;
        let local_b = self.cfg.batch / self.cfg.q;
        let hb = self.cfg.local_cols();
        let mut pooled = Tensor::zeros(&[local_b, hb]);
        for sb in 0..local_b {
            pooled.row_mut(sb).copy_from_slice(hidden.row(sb * s));
        }
        pooled
    }

    /// Classification logits for this device's sequences: `[b/q, c/q]`.
    pub fn classify_forward<C: Communicator>(&self, grid: &Grid2d<C>, tokens: &[usize]) -> Tensor {
        let cls = self.cls.as_ref().expect("built without classifier head");
        let cfg = self.cfg;
        let tokens_local = cfg.local_tokens(tokens, grid.row());
        let mut x = embed2d_forward(grid, &self.table, tokens_local, cfg.vocab);
        for lp in &self.layers {
            x = layer2d_forward(grid, &cfg, lp, &x).0;
        }
        let (hidden, _) = self.final_ln.forward(grid, &x, cfg.hidden);
        cls.forward(grid, &self.pool_first_token(&hidden))
    }

    /// Global mean classification loss for per-sequence labels `[b]`
    /// (identical on every device).
    pub fn classify_loss<C: Communicator>(
        &self,
        grid: &Grid2d<C>,
        tokens: &[usize],
        labels: &[usize],
    ) -> f32 {
        assert_eq!(labels.len(), self.cfg.batch, "one label per sequence");
        let cls = self.cls.as_ref().expect("built without classifier head");
        let num_classes = cls.w.cols() * self.cfg.q;
        let logits = self.classify_forward(grid, tokens);
        let local_b = self.cfg.batch / self.cfg.q;
        let labels_local = &labels[grid.row() * local_b..(grid.row() + 1) * local_b];
        ce2d(grid, &logits, labels_local, num_classes, self.cfg.batch).0
    }

    /// Evaluation loss (no gradients). `tokens`/`labels` are the full
    /// `b·s` arrays; each device uses its batch block.
    pub fn lm_loss<C: Communicator>(
        &self,
        grid: &Grid2d<C>,
        tokens: &[usize],
        labels: &[usize],
    ) -> f32 {
        let tokens_local = self.cfg.local_tokens(tokens, grid.row());
        let labels_local = self.cfg.local_tokens(labels, grid.row());
        let mut x = embed2d_forward(grid, &self.table, tokens_local, self.cfg.vocab);
        for lp in &self.layers {
            x = layer2d_forward(grid, &self.cfg, lp, &x).0;
        }
        let (hidden, _) = self.final_ln.forward(grid, &x, self.cfg.hidden);
        let logits = lm_head2d_forward(grid, &hidden, &self.table);
        ce2d(
            grid,
            &logits,
            labels_local,
            self.cfg.vocab,
            self.cfg.batch * self.cfg.seq,
        )
        .0
    }

    /// Forward + backward. Honors `cfg.checkpoint`: when set, only each
    /// layer's input block is kept during forward and the layer is
    /// recomputed inside backward (Section 3.2.3). Returns the loss and all
    /// local gradients; `self.meter` holds the step's activation peak.
    pub fn lm_grads<C: Communicator>(
        &mut self,
        grid: &Grid2d<C>,
        tokens: &[usize],
        labels: &[usize],
    ) -> (f32, Model2dGrads) {
        let cfg = self.cfg;
        let tokens_local = cfg.local_tokens(tokens, grid.row());
        let labels_local = cfg.local_tokens(labels, grid.row());
        let total_rows = cfg.batch * cfg.seq;
        self.meter = MemMeter::new();

        // ---- Forward ----
        let fwd_span = trace::span_guard("fwd");
        let x0 = embed2d_forward(grid, &self.table, tokens_local, cfg.vocab);
        self.meter.alloc(tensor_bytes(&x0));

        // Layer inputs (the checkpoints) are needed either way; full caches
        // only when checkpointing is off.
        let mut inputs: Vec<Tensor> = Vec::with_capacity(cfg.layers);
        let mut caches = Vec::new();
        let mut x = x0.clone();
        for lp in &self.layers {
            inputs.push(x.clone());
            self.meter.alloc(tensor_bytes(&x));
            let (y, cache) = layer2d_forward(grid, &cfg, lp, &x);
            if !cfg.checkpoint {
                self.meter.alloc(cache.bytes());
                caches.push(cache);
            }
            x = y;
        }
        let (hidden, final_ln_cache) = self.final_ln.forward(grid, &x, cfg.hidden);
        self.meter.alloc(tensor_bytes(&hidden));
        drop(fwd_span);

        // ---- Loss head ----
        let loss_span = trace::span_guard("loss_head");
        let logits = lm_head2d_forward(grid, &hidden, &self.table);
        self.meter.alloc(tensor_bytes(&logits));
        let (loss, dlogits) = ce2d(grid, &logits, labels_local, cfg.vocab, total_rows);

        let mut d_table = Tensor::zeros(&[self.table.rows(), self.table.cols()]);
        let dhidden = lm_head2d_backward(grid, &dlogits, &hidden, &self.table, &mut d_table);
        self.meter.free(tensor_bytes(&logits));
        drop(loss_span);

        // ---- Layer backward (reverse) ----
        let bwd_span = trace::span_guard("bwd");
        let (mut dx, final_ln_g, final_ln_b) =
            self.final_ln
                .backward(grid, &dhidden, &final_ln_cache, cfg.hidden);
        self.meter.free(tensor_bytes(&hidden));

        let mut layer_grads: Vec<Layer2dGrads> = Vec::with_capacity(cfg.layers);
        for l in (0..cfg.layers).rev() {
            let cache = if cfg.checkpoint {
                // Re-forward this layer from its checkpointed input.
                let (_, cache) = layer2d_forward(grid, &cfg, &self.layers[l], &inputs[l]);
                self.meter.alloc(cache.bytes());
                cache
            } else {
                caches.pop().expect("one cache per layer")
            };
            let (dprev, g) = layer2d_backward(grid, &cfg, &self.layers[l], &cache, &dx);
            self.meter.free(cache.bytes());
            self.meter.free(tensor_bytes(&inputs[l]));
            layer_grads.push(g);
            dx = dprev;
        }
        layer_grads.reverse();

        embed2d_backward(grid, &dx, tokens_local, cfg.vocab, &mut d_table);
        self.meter.free(tensor_bytes(&x0));
        drop(bwd_span);

        (
            loss,
            Model2dGrads {
                table: d_table,
                layers: layer_grads,
                final_ln_g,
                final_ln_b,
            },
        )
    }

    /// One SGD step (gradients accumulated, then applied). Returns the
    /// pre-update loss.
    pub fn train_step<C: Communicator>(
        &mut self,
        grid: &Grid2d<C>,
        tokens: &[usize],
        labels: &[usize],
        lr: f32,
    ) -> f32 {
        self.train_step_detailed(grid, tokens, labels, lr).loss
    }

    /// [`OptimusModel::train_step`] plus memory accounting.
    pub fn train_step_detailed<C: Communicator>(
        &mut self,
        grid: &Grid2d<C>,
        tokens: &[usize],
        labels: &[usize],
        lr: f32,
    ) -> TrainOutput {
        let (loss, grads) = self.lm_grads(grid, tokens, labels);
        trace::span("update", || self.apply_sgd(&grads, lr));
        TrainOutput {
            loss,
            peak_activation_bytes: self.meter.peak(),
        }
    }

    /// The paper's method (2): update each layer's parameters *immediately*
    /// after its backward pass and release its gradient buffer, so only one
    /// layer's parameter gradients are ever live. Requires checkpointing.
    /// Mathematically identical to [`OptimusModel::train_step`].
    pub fn train_step_fused<C: Communicator>(
        &mut self,
        grid: &Grid2d<C>,
        tokens: &[usize],
        labels: &[usize],
        lr: f32,
    ) -> f32 {
        let cfg = self.cfg;
        let tokens_local = cfg.local_tokens(tokens, grid.row());
        let labels_local = cfg.local_tokens(labels, grid.row());
        let total_rows = cfg.batch * cfg.seq;

        let x0 = embed2d_forward(grid, &self.table, tokens_local, cfg.vocab);
        let mut inputs: Vec<Tensor> = Vec::with_capacity(cfg.layers);
        let mut x = x0.clone();
        for lp in &self.layers {
            inputs.push(x.clone());
            x = layer2d_forward(grid, &cfg, lp, &x).0;
        }
        let (hidden, final_ln_cache) = self.final_ln.forward(grid, &x, cfg.hidden);
        let logits = lm_head2d_forward(grid, &hidden, &self.table);
        let (loss, dlogits) = ce2d(grid, &logits, labels_local, cfg.vocab, total_rows);

        let mut d_table = Tensor::zeros(&[self.table.rows(), self.table.cols()]);
        let dhidden = lm_head2d_backward(grid, &dlogits, &hidden, &self.table, &mut d_table);
        let (mut dx, fg, fb) = self
            .final_ln
            .backward(grid, &dhidden, &final_ln_cache, cfg.hidden);
        apply_ln_sgd(&mut self.final_ln, fg.as_deref(), fb.as_deref(), lr);

        for l in (0..cfg.layers).rev() {
            let (_, cache) = layer2d_forward(grid, &cfg, &self.layers[l], &inputs[l]);
            let (dprev, g) = layer2d_backward(grid, &cfg, &self.layers[l], &cache, &dx);
            // Immediate update; `g` drops at the end of this iteration,
            // which is the "reset the parameter gradient buffer" step.
            apply_layer_sgd(&mut self.layers[l], &g, lr);
            dx = dprev;
        }

        embed2d_backward(grid, &dx, tokens_local, cfg.vocab, &mut d_table);
        self.table.axpy(-lr, &d_table);
        loss
    }

    /// Distributed greedy next-token prediction (the paper's "inference"
    /// measurement is a forward pass; this adds the decode step).
    ///
    /// Each device holds a `[b/q·s, v/q]` logits block. Per local sequence,
    /// the final position's vocabulary slice is all-gathered along the mesh
    /// **row** (group order = mesh column = vocabulary order) and argmaxed;
    /// the per-row results are then all-gathered along the **column** (group
    /// order = mesh row = batch order), so every device returns the full
    /// `b` next tokens.
    pub fn greedy_next<C: Communicator>(&self, grid: &Grid2d<C>, tokens: &[usize]) -> Vec<usize> {
        let cfg = self.cfg;
        let tokens_local = cfg.local_tokens(tokens, grid.row());
        let mut x = embed2d_forward(grid, &self.table, tokens_local, cfg.vocab);
        for lp in &self.layers {
            x = layer2d_forward(grid, &cfg, lp, &x).0;
        }
        let (hidden, _) = self.final_ln.forward(grid, &x, cfg.hidden);
        let logits = lm_head2d_forward(grid, &hidden, &self.table);

        let s = cfg.seq;
        let local_b = cfg.batch / cfg.q;
        let mut local_next = Vec::with_capacity(local_b);
        for sb in 0..local_b {
            let last = logits.row(sb * s + s - 1);
            let full = grid.ctx().all_gather(grid.row_group(), last);
            let next = full
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .expect("non-empty vocab")
                .0;
            local_next.push(next as f32);
        }
        let all = grid.ctx().all_gather(grid.col_group(), &local_next);
        all.into_iter().map(|v| v as usize).collect()
    }

    /// Visits every *locally hosted* `(parameter, gradient)` pair in a fixed
    /// order. Devices off mesh row 0 simply skip the bias/affine entries, so
    /// each device's visitation order is stable across steps (the contract
    /// [`tensor::optim::AdamSet`] needs).
    pub fn visit_params_grads(
        &mut self,
        grads: &Model2dGrads,
        f: &mut impl FnMut(&mut [f32], &[f32]),
    ) {
        fn opt_pair(
            p: &mut Option<Vec<f32>>,
            g: &Option<Vec<f32>>,
            f: &mut impl FnMut(&mut [f32], &[f32]),
        ) {
            match (p, g) {
                (Some(pv), Some(gv)) => f(pv, gv),
                (None, None) => {}
                _ => panic!("parameter/gradient hosting mismatch"),
            }
        }
        f(self.table.as_mut_slice(), grads.table.as_slice());
        opt_pair(&mut self.final_ln.gamma, &grads.final_ln_g, f);
        opt_pair(&mut self.final_ln.beta, &grads.final_ln_b, f);
        for (lp, lg) in self.layers.iter_mut().zip(&grads.layers) {
            opt_pair(&mut lp.ln1.gamma, &lg.ln1_g, f);
            opt_pair(&mut lp.ln1.beta, &lg.ln1_b, f);
            f(lp.qkv.w.as_mut_slice(), lg.w_qkv.as_slice());
            opt_pair(&mut lp.qkv.bias, &lg.b_qkv, f);
            f(lp.out.w.as_mut_slice(), lg.w_out.as_slice());
            opt_pair(&mut lp.out.bias, &lg.b_out, f);
            opt_pair(&mut lp.ln2.gamma, &lg.ln2_g, f);
            opt_pair(&mut lp.ln2.beta, &lg.ln2_b, f);
            f(lp.fc1.w.as_mut_slice(), lg.w_fc1.as_slice());
            opt_pair(&mut lp.fc1.bias, &lg.b_fc1, f);
            f(lp.fc2.w.as_mut_slice(), lg.w_fc2.as_slice());
            opt_pair(&mut lp.fc2.bias, &lg.b_fc2, f);
        }
    }

    /// One SGD step accumulated over several microbatches (gradient
    /// accumulation): each `(tokens, labels)` pair is a full `b·s` batch for
    /// this config; the averaged gradients are exactly those of one large
    /// batch of `k·b` sequences. Returns the mean loss.
    pub fn train_step_accumulated<C: Communicator>(
        &mut self,
        grid: &Grid2d<C>,
        microbatches: &[(Vec<usize>, Vec<usize>)],
        lr: f32,
    ) -> f32 {
        assert!(!microbatches.is_empty());
        let k = microbatches.len() as f32;
        let mut total: Option<Model2dGrads> = None;
        let mut loss_sum = 0.0f32;
        for (tokens, labels) in microbatches {
            let (loss, grads) = self.lm_grads(grid, tokens, labels);
            loss_sum += loss;
            match &mut total {
                None => total = Some(grads),
                Some(acc) => acc.accumulate(&grads),
            }
        }
        let mut grads = total.expect("at least one microbatch");
        grads.scale(1.0 / k);
        self.apply_sgd(&grads, lr);
        loss_sum / k
    }

    /// One SGD step with **global** gradient-norm clipping: every device
    /// contributes its hosted gradients' squared norm (each parameter is
    /// hosted exactly once, so the mesh-wide sum is the true global norm),
    /// one scalar all-reduce shares it, and the uniform clip is applied as
    /// an effective learning-rate scale. Returns `(loss, clip scale)` —
    /// identical on every device and to the serial model.
    pub fn train_step_clipped<C: Communicator>(
        &mut self,
        grid: &Grid2d<C>,
        tokens: &[usize],
        labels: &[usize],
        lr: f32,
        max_norm: f64,
    ) -> (f32, f32) {
        let (loss, grads) = self.lm_grads(grid, tokens, labels);
        let mut sq = 0.0f64;
        self.visit_params_grads(&grads, &mut |_, g| sq += tensor::schedule::sq_norm(g));
        let mut total = vec![sq as f32];
        grid.ctx().all_reduce(&grid.slice_group(), &mut total);
        let scale = tensor::schedule::clip_scale(total[0] as f64, max_norm);
        self.apply_sgd(&grads, lr * scale);
        (loss, scale)
    }

    /// One Adam training step; `opt` holds this device's moments.
    ///
    /// Because every parameter is hosted (and therefore Adam-updated) on
    /// exactly one device, the distributed Adam trajectory is identical to
    /// the serial one — asserted by the integration tests.
    pub fn train_step_adam<C: Communicator>(
        &mut self,
        grid: &Grid2d<C>,
        tokens: &[usize],
        labels: &[usize],
        opt: &mut tensor::optim::AdamSet,
    ) -> f32 {
        let (loss, grads) = self.lm_grads(grid, tokens, labels);
        opt.begin_step();
        self.visit_params_grads(&grads, &mut |p, g| opt.apply(p, g));
        loss
    }

    /// Plain SGD over all local parameters.
    pub fn apply_sgd(&mut self, grads: &Model2dGrads, lr: f32) {
        self.table.axpy(-lr, &grads.table);
        apply_ln_sgd(
            &mut self.final_ln,
            grads.final_ln_g.as_deref(),
            grads.final_ln_b.as_deref(),
            lr,
        );
        for (lp, lg) in self.layers.iter_mut().zip(&grads.layers) {
            apply_layer_sgd(lp, lg, lr);
        }
    }
}

fn upd_opt(p: &mut Option<Vec<f32>>, g: Option<&[f32]>, lr: f32) {
    match (p, g) {
        (Some(pv), Some(gv)) => {
            for (a, b) in pv.iter_mut().zip(gv) {
                *a -= lr * b;
            }
        }
        (None, None) => {}
        _ => panic!("parameter/gradient hosting mismatch"),
    }
}

fn apply_ln_sgd(ln: &mut LayerNorm2d, dg: Option<&[f32]>, db: Option<&[f32]>, lr: f32) {
    upd_opt(&mut ln.gamma, dg, lr);
    upd_opt(&mut ln.beta, db, lr);
}

fn apply_layer_sgd(p: &mut Layer2dParams, g: &Layer2dGrads, lr: f32) {
    upd_opt(&mut p.ln1.gamma, g.ln1_g.as_deref(), lr);
    upd_opt(&mut p.ln1.beta, g.ln1_b.as_deref(), lr);
    p.qkv.w.axpy(-lr, &g.w_qkv);
    upd_opt(&mut p.qkv.bias, g.b_qkv.as_deref(), lr);
    p.out.w.axpy(-lr, &g.w_out);
    upd_opt(&mut p.out.bias, g.b_out.as_deref(), lr);
    upd_opt(&mut p.ln2.gamma, g.ln2_g.as_deref(), lr);
    upd_opt(&mut p.ln2.beta, g.ln2_b.as_deref(), lr);
    p.fc1.w.axpy(-lr, &g.w_fc1);
    upd_opt(&mut p.fc1.bias, g.b_fc1.as_deref(), lr);
    p.fc2.w.axpy(-lr, &g.w_fc2);
    upd_opt(&mut p.fc2.bias, g.b_fc2.as_deref(), lr);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::Mesh2d;
    use serial::SerialModel;
    use tensor::Rng;

    fn data(cfg: &OptimusConfig, seed: u64) -> (Vec<usize>, Vec<usize>) {
        let mut rng = Rng::new(seed);
        let n = cfg.batch * cfg.seq;
        let tokens = (0..n).map(|_| rng.below(cfg.vocab)).collect();
        let labels = (0..n).map(|_| rng.below(cfg.vocab)).collect();
        (tokens, labels)
    }

    #[test]
    fn loss_matches_serial_reference() {
        for q in [1usize, 2, 3] {
            let cfg = OptimusConfig::tiny(q);
            let (tokens, labels) = data(&cfg, 20);
            let reference = SerialModel::new(cfg.model(), 7).lm_loss(&tokens, &labels);
            let losses = Mesh2d::run(q, |grid| {
                OptimusModel::new(&cfg, 7, grid).lm_loss(grid, &tokens, &labels)
            });
            for l in losses {
                assert!(
                    (l - reference).abs() < 1e-4,
                    "q={q}: optimus={l} serial={reference}"
                );
            }
        }
    }

    #[test]
    fn training_trajectory_matches_serial() {
        let cfg = OptimusConfig::tiny(2);
        let (tokens, labels) = data(&cfg, 21);
        let mut reference = SerialModel::new(cfg.model(), 9);
        let ref_losses: Vec<f32> = (0..4)
            .map(|_| reference.train_step(&tokens, &labels, 0.2))
            .collect();
        let losses = Mesh2d::run(cfg.q, |grid| {
            let mut m = OptimusModel::new(&cfg, 9, grid);
            (0..4)
                .map(|_| m.train_step(grid, &tokens, &labels, 0.2))
                .collect::<Vec<f32>>()
        });
        for dev in &losses {
            for (a, b) in dev.iter().zip(&ref_losses) {
                assert!((a - b).abs() < 2e-3, "optimus={a} serial={b}");
            }
        }
    }

    #[test]
    fn checkpointing_is_numerically_identical() {
        let mut cfg = OptimusConfig::tiny(2);
        let (tokens, labels) = data(&cfg, 22);
        cfg.checkpoint = false;
        let plain = Mesh2d::run(cfg.q, |grid| {
            let mut m = OptimusModel::new(&cfg, 3, grid);
            (0..3)
                .map(|_| m.train_step(grid, &tokens, &labels, 0.3))
                .collect::<Vec<f32>>()
        });
        cfg.checkpoint = true;
        let ckpt = Mesh2d::run(cfg.q, |grid| {
            let mut m = OptimusModel::new(&cfg, 3, grid);
            (0..3)
                .map(|_| m.train_step(grid, &tokens, &labels, 0.3))
                .collect::<Vec<f32>>()
        });
        for (a, b) in plain.iter().zip(&ckpt) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-5, "plain={x} ckpt={y}");
            }
        }
    }

    #[test]
    fn checkpointing_reduces_peak_activation_memory() {
        let mut cfg = OptimusConfig::tiny(2);
        cfg.layers = 4;
        let (tokens, labels) = data(&cfg, 23);
        let peak = |checkpoint: bool| {
            let mut c = cfg;
            c.checkpoint = checkpoint;
            let outs = Mesh2d::run(c.q, |grid| {
                let mut m = OptimusModel::new(&c, 5, grid);
                m.train_step_detailed(grid, &tokens, &labels, 0.1)
                    .peak_activation_bytes
            });
            outs[0]
        };
        let plain = peak(false);
        let ckpt = peak(true);
        assert!(
            (ckpt as f64) < 0.6 * plain as f64,
            "checkpointing should cut peak activations: plain={plain} ckpt={ckpt}"
        );
    }

    #[test]
    fn fused_immediate_update_matches_plain_step() {
        let mut cfg = OptimusConfig::tiny(2);
        cfg.checkpoint = true;
        let (tokens, labels) = data(&cfg, 24);
        let plain = Mesh2d::run(cfg.q, |grid| {
            let mut m = OptimusModel::new(&cfg, 6, grid);
            (0..3)
                .map(|_| m.train_step(grid, &tokens, &labels, 0.2))
                .collect::<Vec<f32>>()
        });
        let fused = Mesh2d::run(cfg.q, |grid| {
            let mut m = OptimusModel::new(&cfg, 6, grid);
            (0..3)
                .map(|_| m.train_step_fused(grid, &tokens, &labels, 0.2))
                .collect::<Vec<f32>>()
        });
        for (a, b) in plain.iter().zip(&fused) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-5, "plain={x} fused={y}");
            }
        }
    }

    #[test]
    fn gradient_accumulation_equals_the_large_batch() {
        // Two accumulated microbatches of b sequences == one serial batch
        // of 2b sequences (same tokens, concatenated).
        let cfg = OptimusConfig::tiny(2);
        let (t1, l1) = data(&cfg, 40);
        let (t2, l2) = data(&cfg, 41);
        let lr = 0.25;

        let big_cfg = serial::ModelConfig {
            batch: 2 * cfg.batch,
            ..cfg.model()
        };
        let big_tokens: Vec<usize> = t1.iter().chain(&t2).copied().collect();
        let big_labels: Vec<usize> = l1.iter().chain(&l2).copied().collect();
        let mut reference = SerialModel::new(big_cfg, 14);
        let ref_losses: Vec<f32> = (0..3)
            .map(|_| reference.train_step(&big_tokens, &big_labels, lr))
            .collect();

        let micro = vec![(t1, l1), (t2, l2)];
        let losses = Mesh2d::run(cfg.q, |grid| {
            let mut m = OptimusModel::new(&cfg, 14, grid);
            (0..3)
                .map(|_| m.train_step_accumulated(grid, &micro, lr))
                .collect::<Vec<f32>>()
        });
        for dev in &losses {
            for (a, b) in dev.iter().zip(&ref_losses) {
                assert!((a - b).abs() < 2e-3, "accumulated={a} big-batch={b}");
            }
        }
    }

    #[test]
    fn classification_branch_matches_serial() {
        let cfg = OptimusConfig::tiny(2);
        let mut rng = tensor::Rng::new(30);
        let tokens: Vec<usize> = (0..cfg.batch * cfg.seq)
            .map(|_| rng.below(cfg.vocab))
            .collect();
        let cls_labels: Vec<usize> = (0..cfg.batch).map(|_| rng.below(2)).collect();
        let serial = SerialModel::new(cfg.model(), 12).with_classifier(12);
        let expect_logits = serial.classify_forward(&tokens);
        let expect_loss = serial.classify_loss(&tokens, &cls_labels);

        let outs = Mesh2d::run(cfg.q, |grid| {
            let m = OptimusModel::new(&cfg, 12, grid).with_classifier(grid, 12, 2);
            (
                m.classify_forward(grid, &tokens),
                m.classify_loss(grid, &tokens, &cls_labels),
            )
        });
        // Reassemble the [b, 2] logits from the q x q blocks.
        let blocks: Vec<Tensor> = outs.iter().map(|(l, _)| l.clone()).collect();
        let got = Tensor::from_summa_blocks(&blocks, cfg.q);
        tensor::assert_close(got.as_slice(), expect_logits.as_slice(), 1e-4, 1e-3);
        for (_, loss) in &outs {
            assert!((loss - expect_loss).abs() < 1e-4, "{loss} vs {expect_loss}");
        }
    }

    #[test]
    #[should_panic] // device threads die with "classes 3 must be divisible"
    fn classifier_rejects_indivisible_classes() {
        let cfg = OptimusConfig::tiny(2);
        Mesh2d::run(cfg.q, |grid| {
            let _ = OptimusModel::new(&cfg, 0, grid).with_classifier(grid, 0, 3);
        });
    }

    #[test]
    fn fused_attention_is_numerically_identical() {
        let mut cfg = OptimusConfig::tiny(2);
        let (tokens, labels) = data(&cfg, 26);
        cfg.fused_attention = false;
        let plain = Mesh2d::run(cfg.q, |grid| {
            let mut m = OptimusModel::new(&cfg, 4, grid);
            (0..3)
                .map(|_| m.train_step(grid, &tokens, &labels, 0.3))
                .collect::<Vec<f32>>()
        });
        cfg.fused_attention = true;
        let fused = Mesh2d::run(cfg.q, |grid| {
            let mut m = OptimusModel::new(&cfg, 4, grid);
            (0..3)
                .map(|_| m.train_step(grid, &tokens, &labels, 0.3))
                .collect::<Vec<f32>>()
        });
        for (a, b) in plain[0].iter().zip(&fused[0]) {
            assert!((a - b).abs() < 1e-6, "plain={a} fused={b}");
        }
    }

    #[test]
    fn fused_attention_cuts_cached_score_memory() {
        // At long sequence lengths the b·n·s² score tensor dominates; the
        // fused path must not cache it.
        let mut cfg = OptimusConfig::tiny(2);
        cfg.seq = 64; // make scores dominate
        cfg.layers = 2;
        let (tokens, labels) = data(&cfg, 27);
        let peak = |fused: bool| {
            let mut c = cfg;
            c.fused_attention = fused;
            Mesh2d::run(c.q, |grid| {
                let mut m = OptimusModel::new(&c, 5, grid);
                m.train_step_detailed(grid, &tokens, &labels, 0.1)
                    .peak_activation_bytes
            })[0]
        };
        let plain = peak(false);
        let fused = peak(true);
        assert!(
            (fused as f64) < 0.75 * plain as f64,
            "fused attention should cut peak activations: {plain} -> {fused}"
        );
    }

    #[test]
    fn losses_agree_across_all_devices() {
        let cfg = OptimusConfig::tiny(3);
        let (tokens, labels) = data(&cfg, 25);
        let losses = Mesh2d::run(cfg.q, |grid| {
            let mut m = OptimusModel::new(&cfg, 8, grid);
            m.train_step(grid, &tokens, &labels, 0.1)
        });
        for l in &losses {
            assert!((l - losses[0]).abs() < 1e-6);
        }
    }
}
