//! 2D embedding, tied LM head and row-parallel cross-entropy
//! (paper Sections 3.2.1–3.2.2).
//!
//! The embedding table `[v, h]` is `q × q`-blocked like every other
//! parameter. The lookup is SUMMA `C = A·B` where `A` is the one-hot token
//! matrix — never materialised: mesh row `i` holds the token ids of batch
//! block `i` (replicated along the row), so the `A` panels need no
//! communication and each iteration only broadcasts a table panel down the
//! column. The tied LM head is exactly Algorithm 2 (`logits = H·Eᵀ`), and
//! the cross-entropy reduces `max` / `Σexp` / label-logit partials along
//! mesh rows (the vocabulary spans a row).

use mesh::{Communicator, Grid2d};
use summa::{summa_nn, summa_tn};
use tensor::loss::{ce_grad_local, partial_label_logit, partial_row_max, partial_sumexp};
use tensor::Tensor;

/// Broadcasts the root row's table block down each column and returns it.
fn table_panel<C: Communicator>(grid: &Grid2d<C>, table_block: &Tensor, root_row: usize) -> Tensor {
    let dims = [table_block.rows(), table_block.cols()];
    let mut buf = if grid.row() == root_row {
        table_block.as_slice().to_vec()
    } else {
        // Pre-sized so the trace backend knows the payload length.
        vec![0.0; dims[0] * dims[1]]
    };
    grid.ctx().broadcast(grid.col_group(), root_row, &mut buf);
    Tensor::from_vec(&dims, buf)
}

/// Embedding forward: SUMMA `C = A·B` with implicit one-hot `A`.
///
/// `table_block: [v/q, h/q]` is this device's block (vocab rows block =
/// mesh row, hidden columns block = mesh column). `tokens_local` are the
/// `b/q · s` token ids of this mesh row's batch block. Returns the local
/// `[b/q·s, h/q]` activation block.
pub fn embed2d_forward<C: Communicator>(
    grid: &Grid2d<C>,
    table_block: &Tensor,
    tokens_local: &[usize],
    vocab: usize,
) -> Tensor {
    let q = grid.q();
    let vb = vocab / q;
    assert_eq!(table_block.rows(), vb, "table block rows");
    let hb = table_block.cols();
    let mut x = Tensor::zeros(&[tokens_local.len(), hb]);
    for l in 0..q {
        let panel = table_panel(grid, table_block, l);
        let off = l * vb;
        for (r, &t) in tokens_local.iter().enumerate() {
            assert!(t < vocab, "token {t} out of vocab {vocab}");
            if t >= off && t < off + vb {
                let src = panel.row(t - off).to_vec();
                for (dst, v) in x.row_mut(r).iter_mut().zip(src) {
                    *dst += v;
                }
            }
        }
    }
    x
}

/// Embedding lookup backward: the gradient of vocab slice `l` is
/// scatter-accumulated locally and reduced down the column to mesh row `l`
/// (the transpose of the forward broadcast). Adds into `d_table_block`.
pub fn embed2d_backward<C: Communicator>(
    grid: &Grid2d<C>,
    dx: &Tensor,
    tokens_local: &[usize],
    vocab: usize,
    d_table_block: &mut Tensor,
) {
    let q = grid.q();
    let vb = vocab / q;
    let hb = dx.cols();
    for l in 0..q {
        let mut partial = Tensor::zeros(&[vb, hb]);
        let off = l * vb;
        for (r, &t) in tokens_local.iter().enumerate() {
            if t >= off && t < off + vb {
                let src = dx.row(r).to_vec();
                for (dst, v) in partial.row_mut(t - off).iter_mut().zip(src) {
                    *dst += v;
                }
            }
        }
        grid.ctx()
            .reduce(grid.col_group(), l, partial.as_mut_slice());
        if grid.row() == l {
            d_table_block.add_assign(&partial);
        }
    }
}

/// Tied LM head forward (Algorithm 2): `logits = H·Eᵀ`, local block
/// `[b/q·s, v/q]`.
pub fn lm_head2d_forward<C: Communicator>(
    grid: &Grid2d<C>,
    hidden: &Tensor,
    table_block: &Tensor,
) -> Tensor {
    summa::summa_nt(grid, hidden, table_block)
}

/// Tied LM head backward (paper Eq. 3): `dH = dL·E`, `dE += dLᵀ·H`.
pub fn lm_head2d_backward<C: Communicator>(
    grid: &Grid2d<C>,
    dlogits: &Tensor,
    hidden: &Tensor,
    table_block: &Tensor,
    d_table_block: &mut Tensor,
) -> Tensor {
    let dh = summa_nn(grid, dlogits, table_block);
    let de = summa_tn(grid, dlogits, hidden);
    d_table_block.add_assign(&de);
    dh
}

/// Row-parallel cross-entropy over local logits `[b/q·s, v/q]`.
///
/// `Σexp` partials are all-reduced along the mesh **row** (the vocabulary
/// dimension, Section 3.2.2); per-block loss sums are then all-reduced along
/// the **column** so every device reports the same global mean loss.
/// Returns `(global mean loss, local dlogits block)`.
pub fn ce2d<C: Communicator>(
    grid: &Grid2d<C>,
    logits: &Tensor,
    labels_local: &[usize],
    vocab: usize,
    total_rows: usize,
) -> (f32, Tensor) {
    let q = grid.q();
    let vb = vocab / q;
    let off = grid.col() * vb;
    assert_eq!(labels_local.len(), logits.rows());

    let mut m = partial_row_max(logits);
    grid.ctx().all_reduce_max(grid.row_group(), &mut m);
    let mut se = partial_sumexp(logits, &m);
    grid.ctx().all_reduce(grid.row_group(), &mut se);
    let mut ll = partial_label_logit(logits, labels_local, off);
    grid.ctx().all_reduce(grid.row_group(), &mut ll);

    // Per-row losses are identical across the mesh row; sum this block's
    // rows once and combine across batch blocks (the column).
    let local_sum: f64 = (0..logits.rows())
        .map(|r| (m[r] + se[r].ln() - ll[r]) as f64)
        .sum();
    let mut total = vec![local_sum as f32];
    grid.ctx().all_reduce(grid.col_group(), &mut total);
    let loss = total[0] / total_rows as f32;

    let grad = ce_grad_local(logits, labels_local, off, &m, &se, 1.0 / total_rows as f32);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::Mesh2d;
    use summa::{collect_blocks, distribute};
    use tensor::loss::cross_entropy;
    use tensor::{assert_close, matmul_nt, Rng, Tensor};

    fn table(v: usize, h: usize) -> Tensor {
        Tensor::randn(&[v, h], 0.5, &mut Rng::new(0))
    }

    #[test]
    fn embed_forward_matches_serial_lookup() {
        for q in [1usize, 2, 3] {
            let (v, h, b, s) = (6 * q, 4 * q, q, 3);
            let full = table(v, h);
            let mut rng = Rng::new(1);
            let tokens: Vec<usize> = (0..b * s).map(|_| rng.below(v)).collect();
            let mut expect = Tensor::zeros(&[b * s, h]);
            for (r, &t) in tokens.iter().enumerate() {
                expect.row_mut(r).copy_from_slice(full.row(t));
            }
            let rows_per = b / q * s;
            let blocks = Mesh2d::run(q, |g| {
                let block = distribute(g, &full);
                let local = &tokens[g.row() * rows_per..(g.row() + 1) * rows_per];
                embed2d_forward(g, &block, local, v)
            });
            assert_close(
                collect_blocks(&blocks, q).as_slice(),
                expect.as_slice(),
                1e-5,
                1e-5,
            );
        }
    }

    #[test]
    fn embed_backward_matches_serial_scatter() {
        let q = 2;
        let (v, h, b, s) = (8, 4, 2, 3);
        let mut rng = Rng::new(2);
        let tokens: Vec<usize> = (0..b * s).map(|_| rng.below(v)).collect();
        let dx = Tensor::randn(&[b * s, h], 1.0, &mut rng);
        // Serial scatter.
        let mut expect = Tensor::zeros(&[v, h]);
        for (r, &t) in tokens.iter().enumerate() {
            let src = dx.row(r).to_vec();
            for (dst, val) in expect.row_mut(t).iter_mut().zip(src) {
                *dst += val;
            }
        }
        let rows_per = b / q * s;
        let blocks = Mesh2d::run(q, |g| {
            let mut dt = Tensor::zeros(&[v / q, h / q]);
            let local = &tokens[g.row() * rows_per..(g.row() + 1) * rows_per];
            embed2d_backward(g, &distribute(g, &dx), local, v, &mut dt);
            dt
        });
        assert_close(
            collect_blocks(&blocks, q).as_slice(),
            expect.as_slice(),
            1e-5,
            1e-5,
        );
    }

    #[test]
    fn lm_head_matches_serial() {
        let q = 2;
        let (v, h, rows) = (8, 4, 6);
        let full = table(v, h);
        let mut rng = Rng::new(3);
        let hidden = Tensor::randn(&[rows, h], 1.0, &mut rng);
        let expect = matmul_nt(&hidden, &full);
        let blocks = Mesh2d::run(q, |g| {
            lm_head2d_forward(g, &distribute(g, &hidden), &distribute(g, &full))
        });
        assert_close(
            collect_blocks(&blocks, q).as_slice(),
            expect.as_slice(),
            1e-4,
            1e-4,
        );
    }

    #[test]
    fn ce2d_matches_serial_cross_entropy() {
        let q = 2;
        let (v, b, s) = (8, 2, 3);
        let rows = b * s;
        let mut rng = Rng::new(4);
        let logits = Tensor::randn(&[rows, v], 1.5, &mut rng);
        let labels: Vec<usize> = (0..rows).map(|_| rng.below(v)).collect();
        let (loss_ref, grad_ref) = cross_entropy(&logits, &labels);
        let rows_per = rows / q;
        let outs = Mesh2d::run(q, |g| {
            let block = distribute(g, &logits);
            let local = &labels[g.row() * rows_per..(g.row() + 1) * rows_per];
            ce2d(g, &block, local, v, rows)
        });
        let grads: Vec<Tensor> = outs.iter().map(|(_, g)| g.clone()).collect();
        for (loss, _) in &outs {
            assert!((loss - loss_ref).abs() < 1e-5, "{loss} vs {loss_ref}");
        }
        assert_close(
            collect_blocks(&grads, q).as_slice(),
            grad_ref.as_slice(),
            1e-5,
            1e-5,
        );
    }
}
