//! Local parameter slices for the 1D scheme, cut from the canonical full
//! matrices so that Megatron and the serial reference start bit-identical.

use serial::{LayerParams, ModelConfig};
use tensor::Tensor;

/// Megatron run configuration: the model plus the partition width.
#[derive(Clone, Copy, Debug)]
pub struct MegatronConfig {
    pub model: ModelConfig,
    /// Number of devices (1D partition width).
    pub p: usize,
    /// Distributed activation checkpointing: keep only each layer's
    /// (replicated) input and recompute the layer inside backward — the
    /// configuration the paper's Megatron baseline runs with.
    pub checkpoint: bool,
}

impl MegatronConfig {
    pub fn new(model: ModelConfig, p: usize) -> Self {
        model.validate_1d(p);
        MegatronConfig {
            model,
            p,
            checkpoint: false,
        }
    }

    /// Enables activation checkpointing.
    pub fn with_checkpoint(mut self) -> Self {
        self.checkpoint = true;
        self
    }

    /// Local hidden width `h/p` (heads × head-dim owned by one device).
    pub fn local_hidden(&self) -> usize {
        self.model.hidden / self.p
    }

    /// The per-device view of the model used inside local attention:
    /// `n/p` heads of unchanged head dimension.
    pub fn local_view(&self) -> ModelConfig {
        ModelConfig {
            hidden: self.local_hidden(),
            heads: self.model.heads / self.p,
            ..self.model
        }
    }
}

/// Extracts device `j`'s columns of one `[h, h]` third of the fused QKV
/// matrix and stacks q/k/v slices side by side: `[h, 3h/p]`.
fn slice_qkv_cols(w_qkv: &Tensor, h: usize, p: usize, j: usize) -> Tensor {
    let w = h / p;
    let mut out = Tensor::zeros(&[h, 3 * w]);
    for part in 0..3 {
        let block = w_qkv.block(0, part * h + j * w, h, w);
        out.set_block(0, part * w, &block);
    }
    out
}

fn slice_qkv_bias(b_qkv: &[f32], h: usize, p: usize, j: usize) -> Vec<f32> {
    let w = h / p;
    let mut out = Vec::with_capacity(3 * w);
    for part in 0..3 {
        out.extend_from_slice(&b_qkv[part * h + j * w..part * h + (j + 1) * w]);
    }
    out
}

/// Device-local slice of one layer's parameters.
#[derive(Clone, Debug)]
pub struct Layer1dParams {
    pub ln1_g: Vec<f32>,
    pub ln1_b: Vec<f32>,
    /// `[h, 3h/p]` — this device's heads of the fused QKV projection.
    pub w_qkv: Tensor,
    pub b_qkv: Vec<f32>,
    /// `[h/p, h]` row slice of the output projection.
    pub w_out: Tensor,
    /// Replicated output bias (added after the all-reduce).
    pub b_out: Vec<f32>,
    pub ln2_g: Vec<f32>,
    pub ln2_b: Vec<f32>,
    /// `[h, 4h/p]` column slice.
    pub w_fc1: Tensor,
    pub b_fc1: Vec<f32>,
    /// `[4h/p, h]` row slice.
    pub w_fc2: Tensor,
    /// Replicated.
    pub b_fc2: Vec<f32>,
}

impl Layer1dParams {
    /// Slices the canonical full layer parameters for device `j` of `p`.
    pub fn from_full(full: &LayerParams, h: usize, p: usize, j: usize) -> Self {
        let w = h / p;
        Layer1dParams {
            ln1_g: full.ln1_g.clone(),
            ln1_b: full.ln1_b.clone(),
            w_qkv: slice_qkv_cols(&full.w_qkv, h, p, j),
            b_qkv: slice_qkv_bias(&full.b_qkv, h, p, j),
            w_out: full.w_out.block(j * w, 0, w, h),
            b_out: full.b_out.clone(),
            ln2_g: full.ln2_g.clone(),
            ln2_b: full.ln2_b.clone(),
            w_fc1: full.w_fc1.block(0, j * 4 * w, h, 4 * w),
            b_fc1: full.b_fc1[j * 4 * w..(j + 1) * 4 * w].to_vec(),
            w_fc2: full.w_fc2.block(j * 4 * w, 0, 4 * w, h),
            b_fc2: full.b_fc2.clone(),
        }
    }

    /// Deterministic initialisation: generate the full layer, then slice.
    pub fn init(seed: u64, layer_idx: usize, cfg: &MegatronConfig, j: usize) -> Self {
        let full = LayerParams::init(seed, layer_idx, cfg.model.hidden);
        Layer1dParams::from_full(&full, cfg.model.hidden, cfg.p, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MegatronConfig {
        MegatronConfig::new(ModelConfig::tiny(), 2)
    }

    #[test]
    fn qkv_slice_keeps_head_alignment() {
        let c = cfg();
        let h = c.model.hidden;
        let full = LayerParams::init(0, 0, h);
        let p0 = Layer1dParams::from_full(&full, h, 2, 0);
        let p1 = Layer1dParams::from_full(&full, h, 2, 1);
        // Device 0's first column equals the full Wq's first column; device
        // 1's first column equals Wq's column h/2.
        for r in 0..h {
            assert_eq!(p0.w_qkv.at(r, 0), full.w_qkv.at(r, 0));
            assert_eq!(p1.w_qkv.at(r, 0), full.w_qkv.at(r, h / 2));
            // K slices start at offset h in the full layout.
            assert_eq!(p0.w_qkv.at(r, h / 2), full.w_qkv.at(r, h));
        }
    }

    #[test]
    fn column_slices_tile_the_full_matrix() {
        let c = cfg();
        let h = c.model.hidden;
        let full = LayerParams::init(1, 0, h);
        let parts: Vec<Layer1dParams> = (0..2)
            .map(|j| Layer1dParams::from_full(&full, h, 2, j))
            .collect();
        // fc1 column slices reassemble to the full fc1.
        let mut re = Tensor::zeros(&[h, 4 * h]);
        for (j, p) in parts.iter().enumerate() {
            re.set_block(0, j * 2 * h, &p.w_fc1);
        }
        assert_eq!(re, full.w_fc1);
        // fc2 row slices reassemble too.
        let mut re2 = Tensor::zeros(&[4 * h, h]);
        for (j, p) in parts.iter().enumerate() {
            re2.set_block(j * 2 * h, 0, &p.w_fc2);
        }
        assert_eq!(re2, full.w_fc2);
    }

    #[test]
    fn local_view_shrinks_heads_and_hidden() {
        let c = cfg();
        let v = c.local_view();
        assert_eq!(v.hidden, 4);
        assert_eq!(v.heads, 1);
        assert_eq!(v.head_dim(), c.model.head_dim());
    }
}
