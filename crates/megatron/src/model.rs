//! The full 1D tensor-parallel stem: vocab-parallel embedding → N parallel
//! layers → replicated final layer norm → tied vocab-parallel LM head →
//! vocab-parallel cross-entropy.

use crate::embedding::{
    embed_backward, embed_forward, lm_head_backward, lm_head_forward, vocab_parallel_ce,
};
use crate::layer::{layer1d_backward, layer1d_forward, Layer1dCache, Layer1dGrads};
use crate::params::{Layer1dParams, MegatronConfig};
use mesh::{Communicator, Group};
use tensor::layernorm::{layer_norm_backward, layer_norm_forward, LnCache, LN_EPS};
use tensor::Tensor;

/// Device-local gradients for every parameter this device owns (plus its
/// replicas of the shared ones).
pub struct Model1dGrads {
    pub table: Tensor,
    pub layers: Vec<Layer1dGrads>,
    pub final_ln_g: Vec<f32>,
    pub final_ln_b: Vec<f32>,
}

/// Forward state of the stem.
pub struct Stem1dCache {
    pub layers: Vec<Layer1dCache>,
    pub final_ln: LnCache,
    pub hidden: Tensor,
}

/// One device's shard of the Megatron model.
pub struct MegatronModel {
    pub cfg: MegatronConfig,
    pub rank: usize,
    pub world: Group,
    /// Vocabulary slice `[v/p, h]` starting at [`MegatronModel::vocab_offset`].
    pub table: Tensor,
    pub vocab_offset: usize,
    pub layers: Vec<Layer1dParams>,
    pub final_ln_g: Vec<f32>,
    pub final_ln_b: Vec<f32>,
}

impl MegatronModel {
    /// Builds this device's shard by slicing the canonical full parameters.
    pub fn new<C: Communicator>(cfg: MegatronConfig, seed: u64, ctx: &C) -> Self {
        assert_eq!(ctx.world_size(), cfg.p, "mesh size must equal cfg.p");
        let full = serial::ModelParams::init(seed, &cfg.model);
        let rank = ctx.rank();
        let vp = cfg.model.vocab / cfg.p;
        MegatronModel {
            cfg,
            rank,
            world: Group::world(cfg.p),
            table: full.embedding.block(rank * vp, 0, vp, cfg.model.hidden),
            vocab_offset: rank * vp,
            layers: full
                .layers
                .iter()
                .map(|lp| Layer1dParams::from_full(lp, cfg.model.hidden, cfg.p, rank))
                .collect(),
            final_ln_g: full.final_ln_g,
            final_ln_b: full.final_ln_b,
        }
    }

    /// Stem forward; the returned hidden states are replicated.
    pub fn forward<C: Communicator>(&self, ctx: &C, tokens: &[usize]) -> Stem1dCache {
        let mut x = embed_forward(ctx, &self.world, &self.table, tokens, self.vocab_offset);
        let mut caches = Vec::with_capacity(self.layers.len());
        for lp in &self.layers {
            let (y, c) = layer1d_forward(ctx, &self.world, &self.cfg, lp, &x);
            caches.push(c);
            x = y;
        }
        let (hidden, final_ln) = layer_norm_forward(&x, &self.final_ln_g, &self.final_ln_b, LN_EPS);
        Stem1dCache {
            layers: caches,
            final_ln,
            hidden,
        }
    }

    /// Mean LM loss (identical on every device).
    pub fn lm_loss<C: Communicator>(&self, ctx: &C, tokens: &[usize], labels: &[usize]) -> f32 {
        let cache = self.forward(ctx, tokens);
        let logits = lm_head_forward(&cache.hidden, &self.table);
        vocab_parallel_ce(ctx, &self.world, &logits, labels, self.vocab_offset).0
    }

    /// Forward + backward; returns the loss and this device's gradients.
    ///
    /// Honors `cfg.checkpoint`: when set, only each layer's replicated
    /// input is kept during forward and the layer is recomputed (including
    /// its two all-reduces — the source of Table 1's `8(p−1)/p·bsh`
    /// backward communication) inside the backward sweep.
    pub fn lm_grads<C: Communicator>(
        &self,
        ctx: &C,
        tokens: &[usize],
        labels: &[usize],
    ) -> (f32, Model1dGrads) {
        // ---- Forward ----
        let fwd_span = trace::span_guard("fwd");
        let mut x = embed_forward(ctx, &self.world, &self.table, tokens, self.vocab_offset);
        let mut inputs: Vec<Tensor> = Vec::with_capacity(self.layers.len());
        let mut caches = Vec::new();
        for lp in &self.layers {
            inputs.push(x.clone());
            let (y, cache) = layer1d_forward(ctx, &self.world, &self.cfg, lp, &x);
            if !self.cfg.checkpoint {
                caches.push(cache);
            }
            x = y;
        }
        let (hidden, final_ln) = layer_norm_forward(&x, &self.final_ln_g, &self.final_ln_b, LN_EPS);
        drop(fwd_span);

        // ---- Loss head ----
        let loss_span = trace::span_guard("loss_head");
        let logits = lm_head_forward(&hidden, &self.table);
        let (loss, dlogits) =
            vocab_parallel_ce(ctx, &self.world, &logits, labels, self.vocab_offset);
        let mut d_table = Tensor::zeros(&[self.table.rows(), self.table.cols()]);
        let dhidden = lm_head_backward(
            ctx,
            &self.world,
            &dlogits,
            &hidden,
            &self.table,
            &mut d_table,
        );
        drop(loss_span);

        // ---- Layer backward (reverse), recomputing when checkpointed ----
        let bwd_span = trace::span_guard("bwd");
        let (mut dx, final_ln_g, final_ln_b) =
            layer_norm_backward(&dhidden, &final_ln, &self.final_ln_g);
        let mut layer_grads = Vec::with_capacity(self.layers.len());
        for l in (0..self.layers.len()).rev() {
            let cache = if self.cfg.checkpoint {
                layer1d_forward(ctx, &self.world, &self.cfg, &self.layers[l], &inputs[l]).1
            } else {
                caches.pop().expect("one cache per layer")
            };
            let (dprev, g) =
                layer1d_backward(ctx, &self.world, &self.cfg, &self.layers[l], &cache, &dx);
            layer_grads.push(g);
            dx = dprev;
        }
        layer_grads.reverse();

        embed_backward(&mut d_table, &dx, tokens, self.vocab_offset);
        drop(bwd_span);

        (
            loss,
            Model1dGrads {
                table: d_table,
                layers: layer_grads,
                final_ln_g,
                final_ln_b,
            },
        )
    }

    /// One SGD step; returns the pre-update loss.
    pub fn train_step<C: Communicator>(
        &mut self,
        ctx: &C,
        tokens: &[usize],
        labels: &[usize],
        lr: f32,
    ) -> f32 {
        let (loss, grads) = self.lm_grads(ctx, tokens, labels);
        trace::span("update", || self.apply_sgd(&grads, lr));
        loss
    }

    /// Greedy next-token prediction: each device holds a `[b·s, v/p]`
    /// logits slice; the final-position slices are all-gathered across the
    /// world (group order = rank = vocabulary order) and argmaxed.
    pub fn greedy_next<C: Communicator>(&self, ctx: &C, tokens: &[usize]) -> Vec<usize> {
        let cache = self.forward(ctx, tokens);
        let logits = lm_head_forward(&cache.hidden, &self.table);
        let s = self.cfg.model.seq;
        (0..self.cfg.model.batch)
            .map(|b| {
                let last = logits.row(b * s + s - 1);
                let full = ctx.all_gather(&self.world, last);
                full.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .expect("non-empty vocab")
                    .0
            })
            .collect()
    }

    /// Visits every `(parameter, gradient)` slice pair in a fixed order
    /// (replicated parameters see identical gradients on every device, so
    /// per-device optimizer states stay in sync).
    pub fn visit_params_grads(
        &mut self,
        grads: &Model1dGrads,
        f: &mut impl FnMut(&mut [f32], &[f32]),
    ) {
        f(self.table.as_mut_slice(), grads.table.as_slice());
        f(&mut self.final_ln_g, &grads.final_ln_g);
        f(&mut self.final_ln_b, &grads.final_ln_b);
        for (lp, lg) in self.layers.iter_mut().zip(&grads.layers) {
            f(&mut lp.ln1_g, &lg.ln1_g);
            f(&mut lp.ln1_b, &lg.ln1_b);
            f(lp.w_qkv.as_mut_slice(), lg.w_qkv.as_slice());
            f(&mut lp.b_qkv, &lg.b_qkv);
            f(lp.w_out.as_mut_slice(), lg.w_out.as_slice());
            f(&mut lp.b_out, &lg.b_out);
            f(&mut lp.ln2_g, &lg.ln2_g);
            f(&mut lp.ln2_b, &lg.ln2_b);
            f(lp.w_fc1.as_mut_slice(), lg.w_fc1.as_slice());
            f(&mut lp.b_fc1, &lg.b_fc1);
            f(lp.w_fc2.as_mut_slice(), lg.w_fc2.as_slice());
            f(&mut lp.b_fc2, &lg.b_fc2);
        }
    }

    /// One Adam training step; `opt` holds this device's moments.
    pub fn train_step_adam<C: Communicator>(
        &mut self,
        ctx: &C,
        tokens: &[usize],
        labels: &[usize],
        opt: &mut tensor::optim::AdamSet,
    ) -> f32 {
        let (loss, grads) = self.lm_grads(ctx, tokens, labels);
        opt.begin_step();
        self.visit_params_grads(&grads, &mut |p, g| opt.apply(p, g));
        loss
    }

    /// Plain SGD over all local parameters.
    pub fn apply_sgd(&mut self, grads: &Model1dGrads, lr: f32) {
        fn upd_t(p: &mut Tensor, g: &Tensor, lr: f32) {
            tensor::optim::sgd_update(p.as_mut_slice(), g.as_slice(), lr);
        }
        fn upd_v(p: &mut [f32], g: &[f32], lr: f32) {
            tensor::optim::sgd_update(p, g, lr);
        }
        upd_t(&mut self.table, &grads.table, lr);
        upd_v(&mut self.final_ln_g, &grads.final_ln_g, lr);
        upd_v(&mut self.final_ln_b, &grads.final_ln_b, lr);
        for (lp, lg) in self.layers.iter_mut().zip(&grads.layers) {
            upd_v(&mut lp.ln1_g, &lg.ln1_g, lr);
            upd_v(&mut lp.ln1_b, &lg.ln1_b, lr);
            upd_t(&mut lp.w_qkv, &lg.w_qkv, lr);
            upd_v(&mut lp.b_qkv, &lg.b_qkv, lr);
            upd_t(&mut lp.w_out, &lg.w_out, lr);
            upd_v(&mut lp.b_out, &lg.b_out, lr);
            upd_v(&mut lp.ln2_g, &lg.ln2_g, lr);
            upd_v(&mut lp.ln2_b, &lg.ln2_b, lr);
            upd_t(&mut lp.w_fc1, &lg.w_fc1, lr);
            upd_v(&mut lp.b_fc1, &lg.b_fc1, lr);
            upd_t(&mut lp.w_fc2, &lg.w_fc2, lr);
            upd_v(&mut lp.b_fc2, &lg.b_fc2, lr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::Mesh;
    use serial::{ModelConfig, SerialModel};
    use tensor::Rng;

    fn data(cfg: &ModelConfig, seed: u64) -> (Vec<usize>, Vec<usize>) {
        let mut rng = Rng::new(seed);
        let tokens = (0..cfg.tokens()).map(|_| rng.below(cfg.vocab)).collect();
        let labels = (0..cfg.tokens()).map(|_| rng.below(cfg.vocab)).collect();
        (tokens, labels)
    }

    #[test]
    fn loss_matches_serial_reference() {
        let model_cfg = ModelConfig {
            heads: 4,
            ..ModelConfig::tiny()
        };
        let (tokens, labels) = data(&model_cfg, 10);
        let reference = SerialModel::new(model_cfg, 7).lm_loss(&tokens, &labels);
        for p in [1usize, 2, 4] {
            let cfg = MegatronConfig::new(model_cfg, p);
            let losses = Mesh::run(p, |ctx| {
                MegatronModel::new(cfg, 7, ctx).lm_loss(ctx, &tokens, &labels)
            });
            for l in losses {
                assert!(
                    (l - reference).abs() < 1e-4,
                    "p={p}: megatron={l} serial={reference}"
                );
            }
        }
    }

    #[test]
    fn training_trajectory_matches_serial() {
        // Several SGD steps must track the serial model step for step —
        // this exercises every parameter gradient in the scheme.
        let model_cfg = ModelConfig::tiny();
        let (tokens, labels) = data(&model_cfg, 11);
        let mut reference = SerialModel::new(model_cfg, 9);
        let ref_losses: Vec<f32> = (0..4)
            .map(|_| reference.train_step(&tokens, &labels, 0.2))
            .collect();
        let cfg = MegatronConfig::new(model_cfg, 2);
        let losses = Mesh::run(cfg.p, |ctx| {
            let mut m = MegatronModel::new(cfg, 9, ctx);
            (0..4)
                .map(|_| m.train_step(ctx, &tokens, &labels, 0.2))
                .collect::<Vec<f32>>()
        });
        for dev in &losses {
            for (a, b) in dev.iter().zip(&ref_losses) {
                assert!((a - b).abs() < 2e-3, "megatron={a} serial={b}");
            }
        }
    }

    #[test]
    fn checkpointing_is_numerically_identical() {
        let model_cfg = ModelConfig::tiny();
        let (tokens, labels) = data(&model_cfg, 14);
        let run = |checkpoint: bool| {
            let cfg = if checkpoint {
                MegatronConfig::new(model_cfg, 2).with_checkpoint()
            } else {
                MegatronConfig::new(model_cfg, 2)
            };
            Mesh::run(cfg.p, |ctx| {
                let mut m = MegatronModel::new(cfg, 4, ctx);
                (0..3)
                    .map(|_| m.train_step(ctx, &tokens, &labels, 0.2))
                    .collect::<Vec<f32>>()
            })
        };
        let plain = run(false);
        let ckpt = run(true);
        for (a, b) in plain[0].iter().zip(&ckpt[0]) {
            assert!((a - b).abs() < 1e-6, "plain={a} ckpt={b}");
        }
    }

    #[test]
    fn gradients_are_consistent_across_devices_for_replicated_params() {
        let model_cfg = ModelConfig::tiny();
        let (tokens, labels) = data(&model_cfg, 12);
        let cfg = MegatronConfig::new(model_cfg, 2);
        let outs = Mesh::run(cfg.p, |ctx| {
            let m = MegatronModel::new(cfg, 3, ctx);
            let (_, g) = m.lm_grads(ctx, &tokens, &labels);
            (g.final_ln_g, g.layers[0].b_out.clone())
        });
        assert_eq!(outs[0].0, outs[1].0);
        assert_eq!(outs[0].1, outs[1].1);
    }
}
