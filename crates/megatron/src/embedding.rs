//! Vocab-parallel embedding, tied LM head and cross-entropy for the 1D
//! scheme. The embedding table is split along the vocabulary dimension; a
//! device embeds the tokens whose ids fall in its slice and an all-reduce
//! assembles the replicated activations. The LM head reuses the local slice
//! (tied weights), producing vocab-sliced logits, and the cross-entropy is
//! computed from local partial reductions — the same decomposition the
//! Optimus 2D cross-entropy uses along mesh rows (Section 3.2.2).

use mesh::{Communicator, Group};
use tensor::loss::{
    ce_grad_local, ce_loss_from_parts, partial_label_logit, partial_row_max, partial_sumexp,
};
use tensor::{matmul_nn, matmul_nt, Tensor};

/// Embedding forward. `table_local: [v/p, h]` is this device's vocabulary
/// slice starting at `vocab_offset`. Returns the replicated `[b·s, h]`
/// activations.
pub fn embed_forward<C: Communicator>(
    ctx: &C,
    world: &Group,
    table_local: &Tensor,
    tokens: &[usize],
    vocab_offset: usize,
) -> Tensor {
    let h = table_local.cols();
    let v_local = table_local.rows();
    let mut x = Tensor::zeros(&[tokens.len(), h]);
    for (r, &t) in tokens.iter().enumerate() {
        if t >= vocab_offset && t < vocab_offset + v_local {
            x.row_mut(r)
                .copy_from_slice(table_local.row(t - vocab_offset));
        }
    }
    ctx.all_reduce(world, x.as_mut_slice());
    x
}

/// Embedding lookup backward: scatter-adds `dx` rows into the local table
/// gradient for tokens this device owns. Purely local.
pub fn embed_backward(
    d_table_local: &mut Tensor,
    dx: &Tensor,
    tokens: &[usize],
    vocab_offset: usize,
) {
    let v_local = d_table_local.rows();
    for (r, &t) in tokens.iter().enumerate() {
        if t >= vocab_offset && t < vocab_offset + v_local {
            let src = dx.row(r).to_vec();
            for (dst, v) in d_table_local.row_mut(t - vocab_offset).iter_mut().zip(src) {
                *dst += v;
            }
        }
    }
}

/// Tied LM head forward: `logits_local = H · E_localᵀ`, shape `[b·s, v/p]`.
pub fn lm_head_forward(hidden: &Tensor, table_local: &Tensor) -> Tensor {
    matmul_nt(hidden, table_local)
}

/// Tied LM head backward: returns the replicated `dH` (after all-reduce) and
/// adds the head's contribution to the local table gradient.
pub fn lm_head_backward<C: Communicator>(
    ctx: &C,
    world: &Group,
    dlogits_local: &Tensor,
    hidden: &Tensor,
    table_local: &Tensor,
    d_table_local: &mut Tensor,
) -> Tensor {
    let mut dh = matmul_nn(dlogits_local, table_local);
    ctx.all_reduce(world, dh.as_mut_slice());
    let de = tensor::matmul_tn(dlogits_local, hidden);
    d_table_local.add_assign(&de);
    dh
}

/// Vocab-parallel cross-entropy: three scalar-per-row all-reduces (max,
/// Σexp, label logit) then a local softmax-minus-onehot gradient.
/// Returns the global mean loss and the local `dlogits` block.
pub fn vocab_parallel_ce<C: Communicator>(
    ctx: &C,
    world: &Group,
    logits_local: &Tensor,
    labels: &[usize],
    vocab_offset: usize,
) -> (f32, Tensor) {
    let rows = logits_local.rows();
    assert_eq!(labels.len(), rows);
    let mut m = partial_row_max(logits_local);
    ctx.all_reduce_max(world, &mut m);
    let mut se = partial_sumexp(logits_local, &m);
    ctx.all_reduce(world, &mut se);
    let mut ll = partial_label_logit(logits_local, labels, vocab_offset);
    ctx.all_reduce(world, &mut ll);
    let loss = ce_loss_from_parts(&m, &se, &ll);
    let grad = ce_grad_local(
        logits_local,
        labels,
        vocab_offset,
        &m,
        &se,
        1.0 / rows as f32,
    );
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::Mesh;
    use serial::ModelConfig;
    use tensor::loss::cross_entropy;
    use tensor::{assert_close, init::init_matrix, Rng};

    fn table(cfg: &ModelConfig) -> Tensor {
        init_matrix(
            0,
            tensor::init::param_ids::EMBEDDING,
            &[cfg.vocab, cfg.hidden],
            0.5,
        )
    }

    #[test]
    fn embed_matches_serial_lookup() {
        let cfg = ModelConfig::tiny();
        let full = table(&cfg);
        let mut rng = Rng::new(1);
        let tokens: Vec<usize> = (0..cfg.tokens()).map(|_| rng.below(cfg.vocab)).collect();
        let p = 2;
        let vp = cfg.vocab / p;
        let outs = Mesh::run(p, |ctx| {
            let world = Group::world(p);
            let local = full.block(ctx.rank() * vp, 0, vp, cfg.hidden);
            embed_forward(ctx, &world, &local, &tokens, ctx.rank() * vp)
        });
        // Serial lookup.
        let mut expect = Tensor::zeros(&[cfg.tokens(), cfg.hidden]);
        for (r, &t) in tokens.iter().enumerate() {
            expect.row_mut(r).copy_from_slice(full.row(t));
        }
        for o in outs {
            assert_close(o.as_slice(), expect.as_slice(), 1e-5, 1e-5);
        }
    }

    #[test]
    fn vocab_parallel_ce_matches_serial() {
        let cfg = ModelConfig::tiny();
        let mut rng = Rng::new(2);
        let logits = Tensor::randn(&[cfg.tokens(), cfg.vocab], 1.5, &mut rng);
        let labels: Vec<usize> = (0..cfg.tokens()).map(|_| rng.below(cfg.vocab)).collect();
        let (loss_ref, grad_ref) = cross_entropy(&logits, &labels);
        let p = 2;
        let vp = cfg.vocab / p;
        let outs = Mesh::run(p, |ctx| {
            let world = Group::world(p);
            let local = logits.block(0, ctx.rank() * vp, cfg.tokens(), vp);
            vocab_parallel_ce(ctx, &world, &local, &labels, ctx.rank() * vp)
        });
        let mut grad = Tensor::zeros(&[cfg.tokens(), cfg.vocab]);
        for (j, (loss, g)) in outs.iter().enumerate() {
            assert!((loss - loss_ref).abs() < 1e-5);
            grad.set_block(0, j * vp, g);
        }
        assert_close(grad.as_slice(), grad_ref.as_slice(), 1e-5, 1e-5);
    }

    #[test]
    fn embed_backward_scatters_only_owned_tokens() {
        let cfg = ModelConfig::tiny();
        let tokens = vec![0usize; cfg.tokens()]; // all owned by device 0
        let dx = Tensor::full(&[cfg.tokens(), cfg.hidden], 1.0);
        let mut d0 = Tensor::zeros(&[cfg.vocab / 2, cfg.hidden]);
        embed_backward(&mut d0, &dx, &tokens, 0);
        assert_eq!(d0.at(0, 0), cfg.tokens() as f32);
        let mut d1 = Tensor::zeros(&[cfg.vocab / 2, cfg.hidden]);
        embed_backward(&mut d1, &dx, &tokens, cfg.vocab / 2);
        assert_eq!(d1.sum(), 0.0);
    }
}
