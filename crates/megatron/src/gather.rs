//! Gathering the 1D-sharded model back into canonical parameters on rank 0
//! (checkpoint saving), mirroring `optimus_core::checkpoint`.

use crate::model::MegatronModel;
use mesh::{Communicator, Group};
use serial::{LayerParams, ModelParams};
use tensor::Tensor;

fn gather_concat_rows<C: Communicator>(
    ctx: &C,
    world: &Group,
    local: &Tensor,
    full_rows: usize,
    cols: usize,
) -> Option<Tensor> {
    let flat = ctx.gather(world, 0, local.as_slice());
    (ctx.rank() == 0).then(|| {
        assert_eq!(flat.len(), full_rows * cols);
        Tensor::from_vec(&[full_rows, cols], flat)
    })
}

/// Reassembles column-sliced weights: device `j` holds columns
/// `[j·w, (j+1)·w)` of a `[rows, p·w]` matrix.
fn gather_concat_cols<C: Communicator>(
    ctx: &C,
    world: &Group,
    local: &Tensor,
    rows: usize,
    full_cols: usize,
) -> Option<Tensor> {
    let p = world.len();
    let w = full_cols / p;
    let flat = ctx.gather(world, 0, local.as_slice());
    (ctx.rank() == 0).then(|| {
        let mut out = Tensor::zeros(&[rows, full_cols]);
        for (j, chunk) in flat.chunks(rows * w).enumerate() {
            out.set_block(0, j * w, &Tensor::from_vec(&[rows, w], chunk.to_vec()));
        }
        out
    })
}

/// Reassembles the permuted fused-QKV weight: device `j`'s local matrix is
/// `[Wq_j | Wk_j | Wv_j]` (each `[h, h/p]`); canonical is contiguous thirds.
fn gather_qkv<C: Communicator>(ctx: &C, world: &Group, local: &Tensor, h: usize) -> Option<Tensor> {
    let p = world.len();
    let w = h / p;
    let flat = ctx.gather(world, 0, local.as_slice());
    (ctx.rank() == 0).then(|| {
        let mut out = Tensor::zeros(&[h, 3 * h]);
        for (j, chunk) in flat.chunks(h * 3 * w).enumerate() {
            let local_j = Tensor::from_vec(&[h, 3 * w], chunk.to_vec());
            for part in 0..3 {
                let block = local_j.block(0, part * w, h, w);
                out.set_block(0, part * h + j * w, &block);
            }
        }
        out
    })
}

fn gather_qkv_bias<C: Communicator>(
    ctx: &C,
    world: &Group,
    local: &[f32],
    h: usize,
) -> Option<Vec<f32>> {
    let p = world.len();
    let w = h / p;
    let flat = ctx.gather(world, 0, local);
    (ctx.rank() == 0).then(|| {
        let mut out = vec![0.0f32; 3 * h];
        for (j, chunk) in flat.chunks(3 * w).enumerate() {
            for part in 0..3 {
                out[part * h + j * w..part * h + (j + 1) * w]
                    .copy_from_slice(&chunk[part * w..(part + 1) * w]);
            }
        }
        out
    })
}

fn gather_concat_vec<C: Communicator>(ctx: &C, world: &Group, local: &[f32]) -> Option<Vec<f32>> {
    let flat = ctx.gather(world, 0, local);
    (ctx.rank() == 0).then_some(flat)
}

impl MegatronModel {
    /// Gathers every parameter to rank 0 and reassembles the canonical
    /// [`ModelParams`]. All devices must call this together. Replicated
    /// parameters (layer norms, second-matrix biases) are taken from rank
    /// 0's copy — the replicas are bit-identical by construction.
    pub fn gather_params<C: Communicator>(&self, ctx: &C) -> Option<ModelParams> {
        let h = self.cfg.model.hidden;
        let v = self.cfg.model.vocab;
        let world = &self.world;

        let embedding = gather_concat_rows(ctx, world, &self.table, v, h);

        let mut layers: Vec<Option<LayerParams>> = Vec::with_capacity(self.layers.len());
        for lp in &self.layers {
            let w_qkv = gather_qkv(ctx, world, &lp.w_qkv, h);
            let b_qkv = gather_qkv_bias(ctx, world, &lp.b_qkv, h);
            let w_out = gather_concat_rows(ctx, world, &lp.w_out, h, h);
            let w_fc1 = gather_concat_cols(ctx, world, &lp.w_fc1, h, 4 * h);
            let b_fc1 = gather_concat_vec(ctx, world, &lp.b_fc1);
            let w_fc2 = gather_concat_rows(ctx, world, &lp.w_fc2, 4 * h, h);
            layers.push(w_qkv.map(|w_qkv| LayerParams {
                ln1_g: lp.ln1_g.clone(),
                ln1_b: lp.ln1_b.clone(),
                w_qkv,
                b_qkv: b_qkv.unwrap(),
                w_out: w_out.unwrap(),
                b_out: lp.b_out.clone(),
                ln2_g: lp.ln2_g.clone(),
                ln2_b: lp.ln2_b.clone(),
                w_fc1: w_fc1.unwrap(),
                b_fc1: b_fc1.unwrap(),
                w_fc2: w_fc2.unwrap(),
                b_fc2: lp.b_fc2.clone(),
            }));
        }

        (ctx.rank() == 0).then(|| ModelParams {
            embedding: embedding.unwrap(),
            layers: layers.into_iter().map(|l| l.unwrap()).collect(),
            final_ln_g: self.final_ln_g.clone(),
            final_ln_b: self.final_ln_b.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::{MegatronConfig, MegatronModel};
    use mesh::Mesh;
    use serial::{ModelConfig, ModelParams, SerialModel};
    use tensor::Rng;

    #[test]
    fn gather_recovers_initial_parameters() {
        let model_cfg = ModelConfig::tiny();
        let cfg = MegatronConfig::new(model_cfg, 2);
        let gathered = Mesh::run(2, |ctx| MegatronModel::new(cfg, 13, ctx).gather_params(ctx));
        let full = ModelParams::init(13, &model_cfg);
        let got = gathered[0].as_ref().expect("rank 0 has the params");
        assert_eq!(got.embedding, full.embedding);
        assert_eq!(got.layers[0].w_qkv, full.layers[0].w_qkv);
        assert_eq!(got.layers[1].w_fc1, full.layers[1].w_fc1);
        assert_eq!(got.layers[0].b_qkv, full.layers[0].b_qkv);
        assert!(gathered[1].is_none());
    }

    #[test]
    fn trained_gathered_params_match_serial() {
        let model_cfg = ModelConfig::tiny();
        let cfg = MegatronConfig::new(model_cfg, 2);
        let mut rng = Rng::new(0);
        let tokens: Vec<usize> = (0..model_cfg.tokens())
            .map(|_| rng.below(model_cfg.vocab))
            .collect();
        let labels: Vec<usize> = (0..model_cfg.tokens())
            .map(|_| rng.below(model_cfg.vocab))
            .collect();
        let gathered = Mesh::run(2, |ctx| {
            let mut m = MegatronModel::new(cfg, 21, ctx);
            for _ in 0..3 {
                m.train_step(ctx, &tokens, &labels, 0.2);
            }
            m.gather_params(ctx)
        });
        let mut reference = SerialModel::new(model_cfg, 21);
        for _ in 0..3 {
            reference.train_step(&tokens, &labels, 0.2);
        }
        let got = gathered[0].as_ref().unwrap();
        tensor::assert_close(
            got.embedding.as_slice(),
            reference.params.embedding.as_slice(),
            1e-4,
            1e-3,
        );
        tensor::assert_close(
            got.layers[1].w_qkv.as_slice(),
            reference.params.layers[1].w_qkv.as_slice(),
            1e-4,
            1e-3,
        );
    }
}
