//! One 1D tensor-parallel transformer layer (paper Fig. 2).
//!
//! Activations entering and leaving the layer are **replicated** on all `p`
//! devices; the two all-reduces (after the attention output projection and
//! after the MLP contraction) restore replication in the forward pass, and
//! two more restore it for the input gradients in the backward pass.

use crate::params::{Layer1dParams, MegatronConfig};
use mesh::{Communicator, Group};
use serial::{attention_backward, attention_forward, AttnCache, Linear};
use tensor::layernorm::{layer_norm_backward, layer_norm_forward, LnCache, LN_EPS};
use tensor::ops::{bias_add, bias_grad, gelu_backward, gelu_forward};
use tensor::{matmul_nt, matmul_tn, Tensor};

/// Forward state saved for backward (local where the scheme is local).
pub struct Layer1dCache {
    pub ln1: LnCache,
    pub ln1_out: Tensor,
    pub q: Tensor,
    pub k: Tensor,
    pub v: Tensor,
    pub attn: AttnCache,
    pub ctxt: Tensor,
    pub x1: Tensor,
    pub ln2: LnCache,
    pub ln2_out: Tensor,
    pub f1: Tensor,
    pub g: Tensor,
}

/// Device-local parameter gradients, mirroring [`Layer1dParams`].
#[derive(Clone, Debug)]
pub struct Layer1dGrads {
    pub ln1_g: Vec<f32>,
    pub ln1_b: Vec<f32>,
    pub w_qkv: Tensor,
    pub b_qkv: Vec<f32>,
    pub w_out: Tensor,
    pub b_out: Vec<f32>,
    pub ln2_g: Vec<f32>,
    pub ln2_b: Vec<f32>,
    pub w_fc1: Tensor,
    pub b_fc1: Vec<f32>,
    pub w_fc2: Tensor,
    pub b_fc2: Vec<f32>,
}

/// Layer forward. `x` is the replicated `[b·s, h]` input.
pub fn layer1d_forward<C: Communicator>(
    ctx: &C,
    world: &Group,
    cfg: &MegatronConfig,
    p: &Layer1dParams,
    x: &Tensor,
) -> (Tensor, Layer1dCache) {
    let _span = trace::span_guard("fwd.layer1d");
    let local = cfg.local_view();
    let w = cfg.local_hidden();
    let rows = cfg.model.tokens();
    assert_eq!(x.dims(), &[rows, cfg.model.hidden]);

    // Self-attention half.
    let (ln1_out, ln1) = layer_norm_forward(x, &p.ln1_g, &p.ln1_b, LN_EPS);
    let qkv_lin = Linear::new(p.w_qkv.clone(), p.b_qkv.clone());
    let qkv = qkv_lin.forward(&ln1_out);
    let q = qkv.block(0, 0, rows, w);
    let k = qkv.block(0, w, rows, w);
    let v = qkv.block(0, 2 * w, rows, w);
    let (ctxt, attn) = attention_forward(&local, &q, &k, &v);
    // Row-parallel output projection: partial product + all-reduce + bias.
    let mut attn_out = tensor::matmul_nn(&ctxt, &p.w_out);
    ctx.all_reduce(world, attn_out.as_mut_slice());
    bias_add(&mut attn_out, &p.b_out);
    let mut x1 = x.clone();
    x1.add_assign(&attn_out);

    // MLP half.
    let (ln2_out, ln2) = layer_norm_forward(&x1, &p.ln2_g, &p.ln2_b, LN_EPS);
    let fc1 = Linear::new(p.w_fc1.clone(), p.b_fc1.clone());
    let f1 = fc1.forward(&ln2_out);
    let g = gelu_forward(&f1);
    let mut f2 = tensor::matmul_nn(&g, &p.w_fc2);
    ctx.all_reduce(world, f2.as_mut_slice());
    bias_add(&mut f2, &p.b_fc2);
    let mut y = x1.clone();
    y.add_assign(&f2);

    (
        y,
        Layer1dCache {
            ln1,
            ln1_out,
            q,
            k,
            v,
            attn,
            ctxt,
            x1,
            ln2,
            ln2_out,
            f1,
            g,
        },
    )
}

/// Layer backward. `dy` is the replicated output gradient; returns the
/// replicated input gradient and the device-local parameter gradients.
pub fn layer1d_backward<C: Communicator>(
    ctx: &C,
    world: &Group,
    cfg: &MegatronConfig,
    p: &Layer1dParams,
    cache: &Layer1dCache,
    dy: &Tensor,
) -> (Tensor, Layer1dGrads) {
    let _span = trace::span_guard("bwd.layer1d");
    let local = cfg.local_view();
    let w = cfg.local_hidden();
    let rows = cfg.model.tokens();

    // MLP half.
    let db_fc2 = bias_grad(dy); // replicated, equals the serial gradient
    let dg = matmul_nt(dy, &p.w_fc2);
    let dw_fc2 = matmul_tn(&cache.g, dy);
    let df1 = gelu_backward(&dg, &cache.f1);
    let db_fc1 = bias_grad(&df1);
    let dw_fc1 = matmul_tn(&cache.ln2_out, &df1);
    let mut dln2_out = matmul_nt(&df1, &p.w_fc1);
    ctx.all_reduce(world, dln2_out.as_mut_slice());
    let (dx1_ln, dln2_g, dln2_b) = layer_norm_backward(&dln2_out, &cache.ln2, &p.ln2_g);
    let mut dx1 = dy.clone();
    dx1.add_assign(&dx1_ln);

    // Attention half.
    let db_out = bias_grad(&dx1);
    let dctxt = matmul_nt(&dx1, &p.w_out);
    let dw_out = matmul_tn(&cache.ctxt, &dx1);
    let (dq, dk, dv) =
        attention_backward(&local, &dctxt, &cache.q, &cache.k, &cache.v, &cache.attn);
    let mut dqkv = Tensor::zeros(&[rows, 3 * w]);
    dqkv.set_block(0, 0, &dq);
    dqkv.set_block(0, w, &dk);
    dqkv.set_block(0, 2 * w, &dv);
    let db_qkv = bias_grad(&dqkv);
    let dw_qkv = matmul_tn(&cache.ln1_out, &dqkv);
    let mut dln1_out = matmul_nt(&dqkv, &p.w_qkv);
    ctx.all_reduce(world, dln1_out.as_mut_slice());
    let (dx_ln, dln1_g, dln1_b) = layer_norm_backward(&dln1_out, &cache.ln1, &p.ln1_g);
    let mut dx = dx1;
    dx.add_assign(&dx_ln);

    (
        dx,
        Layer1dGrads {
            ln1_g: dln1_g,
            ln1_b: dln1_b,
            w_qkv: dw_qkv,
            b_qkv: db_qkv,
            w_out: dw_out,
            b_out: db_out,
            ln2_g: dln2_g,
            ln2_b: dln2_b,
            w_fc1: dw_fc1,
            b_fc1: db_fc1,
            w_fc2: dw_fc2,
            b_fc2: db_fc2,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::Mesh;
    use serial::{layer_backward, layer_forward, LayerParams, ModelConfig};
    use tensor::{assert_close, Rng};

    fn setup() -> (MegatronConfig, LayerParams, Tensor, Tensor) {
        let model = ModelConfig::tiny();
        let cfg = MegatronConfig::new(model, 2);
        let full = LayerParams::init(3, 0, model.hidden);
        let mut rng = Rng::new(4);
        let x = Tensor::randn(&[model.tokens(), model.hidden], 1.0, &mut rng);
        let dy = Tensor::randn(&[model.tokens(), model.hidden], 1.0, &mut rng);
        (cfg, full, x, dy)
    }

    #[test]
    fn forward_matches_serial_layer() {
        let (cfg, full, x, _) = setup();
        let (y_ref, _) = layer_forward(&cfg.model, &full, &x);
        let outs = Mesh::run(cfg.p, |ctx| {
            let world = Group::world(cfg.p);
            let p = Layer1dParams::from_full(&full, cfg.model.hidden, cfg.p, ctx.rank());
            layer1d_forward(ctx, &world, &cfg, &p, &x).0
        });
        for (rank, y) in outs.iter().enumerate() {
            assert_close(y.as_slice(), y_ref.as_slice(), 1e-4, 1e-4);
            assert_eq!(y.dims(), y_ref.dims(), "rank {rank}");
        }
    }

    #[test]
    fn backward_input_grad_matches_serial() {
        let (cfg, full, x, dy) = setup();
        let (_, cache_ref) = layer_forward(&cfg.model, &full, &x);
        let (dx_ref, grads_ref) = layer_backward(&cfg.model, &full, &cache_ref, &dy);
        let outs = Mesh::run(cfg.p, |ctx| {
            let world = Group::world(cfg.p);
            let p = Layer1dParams::from_full(&full, cfg.model.hidden, cfg.p, ctx.rank());
            let (_, cache) = layer1d_forward(ctx, &world, &cfg, &p, &x);
            layer1d_backward(ctx, &world, &cfg, &p, &cache, &dy)
        });
        for (dx, grads) in &outs {
            assert_close(dx.as_slice(), dx_ref.as_slice(), 1e-4, 1e-3);
            // Replicated parameter grads match serial exactly.
            assert_close(&grads.b_out, &grads_ref.b_out, 1e-4, 1e-3);
            assert_close(&grads.ln1_g, &grads_ref.ln1_g, 1e-4, 1e-3);
        }
        // Row-sliced fc2 grads tile the serial gradient.
        let h = cfg.model.hidden;
        let mut re = Tensor::zeros(&[4 * h, h]);
        for (j, (_, grads)) in outs.iter().enumerate() {
            re.set_block(j * 2 * h, 0, &grads.w_fc2);
        }
        assert_close(re.as_slice(), grads_ref.w_fc2.as_slice(), 1e-4, 1e-3);
    }

    #[test]
    fn forward_comm_volume_matches_table1() {
        // Table 1 row 1: forward communication = 2 all-reduces of bsh.
        let (cfg, full, x, _) = setup();
        let (_, logs) = Mesh::run_with_logs(cfg.p, |ctx| {
            let world = Group::world(cfg.p);
            let p = Layer1dParams::from_full(&full, cfg.model.hidden, cfg.p, ctx.rank());
            layer1d_forward(ctx, &world, &cfg, &p, &x);
        });
        let bsh = cfg.model.tokens() * cfg.model.hidden;
        for log in &logs {
            assert_eq!(log.op_count(mesh::CommOp::AllReduce), 2);
            assert_eq!(log.op_elems(mesh::CommOp::AllReduce), 2 * bsh);
        }
    }

    #[test]
    fn activations_stay_replicated() {
        let (cfg, full, x, _) = setup();
        let outs = Mesh::run(cfg.p, |ctx| {
            let world = Group::world(cfg.p);
            let p = Layer1dParams::from_full(&full, cfg.model.hidden, cfg.p, ctx.rank());
            layer1d_forward(ctx, &world, &cfg, &p, &x).0
        });
        // Ring all-reduce is deterministic, so replicas are bit-identical.
        for y in &outs[1..] {
            assert_eq!(y.as_slice(), outs[0].as_slice());
        }
    }
}
