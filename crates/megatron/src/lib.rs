//! Megatron-style 1D tensor parallelism — the paper's baseline (Section 2.2).
//!
//! Parameters of each transformer layer are split across all `p` devices
//! along one dimension (columns of the first matrix of MLP/attention, rows
//! of the second), while **activations are fully replicated**: every layer
//! ends with an all-reduce that rebuilds the whole `[b·s, h]` activation on
//! every device. That replication is exactly the memory bottleneck Optimus
//! removes (Section 3.1.1), and the all-reduce volume `4(p−1)/p·bsh` per
//! layer forward is the first row of the paper's Table 1 — validated against
//! this implementation's [`mesh::CommLog`] by integration tests.
//!
//! Layout conventions (per device `j` of `p`):
//! * fused QKV weight: columns of each of `Wq`, `Wk`, `Wv` for heads
//!   `j·n/p … (j+1)·n/p`, i.e. a `[h, 3h/p]` local matrix;
//! * attention output projection: row slice `[h/p, h]`;
//! * MLP: `[h, 4h/p]` column slice and `[4h/p, h]` row slice;
//! * layer norms and second-matrix biases: replicated;
//! * embedding table: vocabulary row slice `[v/p, h]` (vocab-parallel), with
//!   the LM head tied and the cross-entropy computed vocab-parallel.

mod embedding;
mod gather;
mod layer;
mod model;
mod params;

pub use embedding::{embed_forward, lm_head_forward, vocab_parallel_ce};
pub use layer::{layer1d_backward, layer1d_forward, Layer1dCache, Layer1dGrads};
pub use model::MegatronModel;
pub use params::{Layer1dParams, MegatronConfig};
