//! Shared helpers for the reproduction harness: text-table rendering, CSV
//! output for the `repro` binary, and a minimal wall-clock microbenchmark
//! runner used by every target under `benches/` (all of which are plain
//! `harness = false` binaries).

pub mod coll;

use std::fs;
use std::path::Path;
use std::time::Instant;

pub use std::hint::black_box;

/// Runs `f` a few warm-up times, then `samples` timed times, and prints a
/// `group/label: min/median/mean` line. Returns the median seconds so
/// callers can assert relative speed if they want to.
///
/// Deliberately tiny: no statistics beyond min/median/mean, no outlier
/// rejection — enough to eyeball the ablation deltas the paper discusses.
pub fn bench_fn<T>(group: &str, label: &str, samples: usize, f: impl FnMut() -> T) -> f64 {
    bench_times(group, label, samples, f).1
}

/// Like [`bench_fn`] but returns the **minimum** seconds — the
/// noise-robust statistic to use when comparing two timings on a loaded
/// machine (the min converges on the true cost; the median wanders with
/// scheduler interference).
pub fn bench_fn_min<T>(group: &str, label: &str, samples: usize, f: impl FnMut() -> T) -> f64 {
    bench_times(group, label, samples, f).0
}

fn bench_times<T>(
    group: &str,
    label: &str,
    samples: usize,
    mut f: impl FnMut() -> T,
) -> (f64, f64) {
    let samples = samples.max(1);
    for _ in 0..2.min(samples) {
        black_box(f());
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = times[0];
    let median = times[times.len() / 2];
    let mean: f64 = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{group}/{label:<28} min {:>10.3?}  median {:>10.3?}  mean {:>10.3?}",
        std::time::Duration::from_secs_f64(min),
        std::time::Duration::from_secs_f64(median),
        std::time::Duration::from_secs_f64(mean),
    );
    (min, median)
}

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!(" {c:>w$} "))
            .collect::<Vec<_>>()
            .join("|")
    };
    let mut out = String::new();
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Writes rows as CSV under `results/` (creating the directory), returning
/// the path written.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<String> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut body = headers.join(",");
    body.push('\n');
    for row in rows {
        body.push_str(&row.join(","));
        body.push('\n');
    }
    fs::write(&path, body)?;
    Ok(path.display().to_string())
}

/// Host metadata stamp embedded in every `BENCH_*.json` so the regression
/// gate ([`metrics::regress`]) can tell whether a baseline and a fresh run
/// came from comparable machines. Keys `threads` and `avx2` are the ones
/// `regress::compare` warns on when they differ; `git_rev` records which
/// commit produced the numbers (best-effort — `"unknown"` outside a git
/// checkout).
pub fn host_stamp() -> minjson::Json {
    use minjson::Json;
    // Record whether core detection actually succeeded: `threads: 1` from a
    // failed probe and a genuine single-core host are different situations,
    // and overlap gates want to know which one they are on.
    let detected = std::thread::available_parallelism();
    let threads = detected.as_ref().map_or(1, |n| n.get());
    let threads_detected = detected.is_ok();
    #[cfg(target_arch = "x86_64")]
    let avx2 = std::arch::is_x86_feature_detected!("avx2");
    #[cfg(not(target_arch = "x86_64"))]
    let avx2 = false;
    let git_rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    Json::obj(vec![
        ("threads", Json::Num(threads as f64)),
        ("threads_detected", Json::Bool(threads_detected)),
        ("avx2", Json::Bool(avx2)),
        ("git_rev", Json::Str(git_rev)),
    ])
}

/// Detected available parallelism, or `None` when the probe fails — the
/// value CI gates should branch on instead of assuming spare cores exist.
pub fn detected_cores() -> Option<usize> {
    std::thread::available_parallelism().ok().map(|n| n.get())
}

/// Formats a float with 4 decimal places.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    fn f4_and_f3_format() {
        assert_eq!(f4(1.23456), "1.2346");
        assert_eq!(f3(1.23456), "1.235");
    }

    #[test]
    fn host_stamp_has_gate_keys() {
        let stamp = host_stamp();
        // `threads` and `avx2` are the keys regress::compare warns on; both
        // must be present and well-typed on every platform.
        assert!(stamp.get("threads").unwrap().as_usize().unwrap() >= 1);
        assert!(matches!(
            stamp.get("threads_detected").unwrap(),
            minjson::Json::Bool(_)
        ));
        assert!(matches!(stamp.get("avx2").unwrap(), minjson::Json::Bool(_)));
        assert!(matches!(
            stamp.get("git_rev").unwrap(),
            minjson::Json::Str(s) if !s.is_empty()
        ));
    }
}
