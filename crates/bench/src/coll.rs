//! Live measurement harness for collective algorithms, shared by
//! `optimus-cli tune-coll` and the `coll-bench` binary.
//!
//! Each cell of the sweep runs one `(op, algorithm, payload size)`
//! combination on a fresh thread mesh: every rank loops the collective
//! `reps` times between barriers and times its own loop, the cell takes the
//! **max over ranks** (a collective is only done when its slowest member
//! is) and the **min over trials** (the noise-robust statistic on a loaded
//! host), divided down to seconds per call.
//!
//! `elems` always means what the selection layer ([`mesh::AlgoTable`])
//! sees at the call site:
//! the full payload for broadcast/reduce/all-reduce/reduce-scatter, the
//! per-rank block for all-gather. Reduce-scatter payloads must divide by
//! the group size, so sweep sizes should be multiples of the world size.

use mesh::{CollAlgo, CommOp, Communicator, Group, Mesh, WireDtype};
use std::hint::black_box;
use std::time::Instant;

/// The collectives a tuning sweep covers (everything with a selectable
/// algorithm menu; `Barrier` has a single implementation).
pub const TUNE_OPS: [CommOp; 5] = [
    CommOp::Broadcast,
    CommOp::Reduce,
    CommOp::AllReduce,
    CommOp::AllGather,
    CommOp::ReduceScatter,
];

/// Default payload sizes (f32 elements): 256 B, 4 KiB, 64 KiB, 1 MiB.
pub const TUNE_ELEMS: [usize; 4] = [64, 1024, 16384, 262144];

/// One measured `(op, algorithm, size, wire dtype)` cell.
#[derive(Clone, Copy, Debug)]
pub struct CollSample {
    pub op: CommOp,
    pub algo: CollAlgo,
    /// Payload f32 elements as the selection layer keys them.
    pub elems: usize,
    /// Wire dtype the payload traveled as (f32 = full width).
    pub wire: WireDtype,
    /// Seconds per collective call.
    pub secs: f64,
}

impl CollSample {
    /// Payload bandwidth in GB/s: logical payload bytes over call time.
    /// Algorithm-agnostic by design — wire traffic differs per algorithm,
    /// the payload a caller hands over does not — so cells in one
    /// `(op, size)` row compare directly.
    pub fn gbps(&self) -> f64 {
        (self.elems * 4) as f64 / self.secs / 1e9
    }
}

fn run_once(
    ctx: &impl Communicator,
    g: &Group,
    op: CommOp,
    algo: CollAlgo,
    w: WireDtype,
    data: &mut [f32],
) {
    // Explicit wire dtype per call — the sweep never installs a global
    // wire table, so concurrently running cells cannot contaminate each
    // other (or the rest of the test process).
    match op {
        CommOp::Broadcast => ctx.broadcast_algo_wire(g, 0, data, algo, w),
        CommOp::Reduce => ctx.reduce_algo_wire(g, 0, data, algo, w),
        CommOp::AllReduce => ctx.all_reduce_algo_wire(g, data, algo, w),
        CommOp::AllGather => {
            black_box(ctx.all_gather_algo_wire(g, data, algo, w));
        }
        CommOp::ReduceScatter => {
            black_box(ctx.reduce_scatter_algo_wire(g, data, algo, w));
        }
        _ => ctx.barrier(g),
    }
}

/// Measures one cell on a live `p`-device thread mesh. Panics if `algo` is
/// not on `op`'s menu (the sweep should never ask for an invalid pairing).
pub fn measure_coll(
    op: CommOp,
    algo: CollAlgo,
    p: usize,
    elems: usize,
    reps: usize,
    trials: usize,
) -> CollSample {
    measure_coll_wire(op, algo, p, elems, reps, trials, WireDtype::F32)
}

/// [`measure_coll`] with the payload traveling at an explicit wire dtype —
/// the compressed-vs-full-width comparison cells of `BENCH_coll.json`.
pub fn measure_coll_wire(
    op: CommOp,
    algo: CollAlgo,
    p: usize,
    elems: usize,
    reps: usize,
    trials: usize,
    wire: WireDtype,
) -> CollSample {
    assert!(
        algo.valid_for(op),
        "{} has no {:?} algorithm",
        op.name(),
        algo
    );
    assert!(
        op != CommOp::ReduceScatter || elems.is_multiple_of(p),
        "reduce-scatter payload {elems} must divide by the group size {p}"
    );
    let reps = reps.max(1);
    let trials = trials.max(1);
    let per_rank: Vec<Vec<f64>> = Mesh::run(p, move |ctx| {
        let g = Group::world(p);
        let mut data = vec![1.0f32; elems];
        run_once(ctx, &g, op, algo, wire, &mut data); // warm the queues
        let mut times = Vec::with_capacity(trials);
        for _ in 0..trials {
            ctx.barrier(&g);
            let t0 = Instant::now();
            for _ in 0..reps {
                run_once(ctx, &g, op, algo, wire, &mut data);
            }
            ctx.barrier(&g);
            times.push(t0.elapsed().as_secs_f64());
        }
        times
    });
    let secs = (0..trials)
        .map(|t| per_rank.iter().map(|r| r[t]).fold(0.0, f64::max))
        .fold(f64::INFINITY, f64::min)
        / reps as f64;
    CollSample {
        op,
        algo,
        elems,
        wire,
        secs,
    }
}

/// Repetition count for a cell: scaled down for big payloads so the sweep
/// stays quick, never below 4 so the min-of-trials has something to pick
/// from.
pub fn reps_for(base: usize, elems: usize) -> usize {
    (base * 16384 / elems.max(1)).clamp(4, base.max(4))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_menu_cell_measures_positive_time() {
        for op in TUNE_OPS {
            for &(algo, _) in CollAlgo::ALL.iter() {
                if !algo.valid_for(op) {
                    continue;
                }
                let s = measure_coll(op, algo, 4, 64, 2, 1);
                assert!(s.secs > 0.0, "{} / {:?}", op.name(), algo);
                assert!(s.gbps() > 0.0);
            }
        }
    }

    #[test]
    fn reps_scale_down_with_payload() {
        assert_eq!(reps_for(24, 64), 24);
        assert_eq!(reps_for(24, 16384), 24);
        assert_eq!(reps_for(24, 262144), 4);
        assert_eq!(reps_for(0, 1), 4);
    }
}
