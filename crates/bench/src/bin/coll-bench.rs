//! Collective-algorithm bandwidth sweep: every algorithm on every
//! collective's menu, timed on the live thread mesh across message sizes,
//! written as `BENCH_coll.json` so `regress-check compare` can gate a fresh
//! run against the committed baseline.
//!
//! ```text
//! coll-bench [--devices 8] [--reps 24] [--smoke] [--out BENCH_coll.json]
//! ```
//!
//! * `--devices` — world size of the measurement mesh (default 8).
//! * `--reps`    — repetition budget per cell, scaled down for big payloads.
//! * `--smoke`   — CI mode: two sizes instead of four, fewer reps, and the
//!   artifact carries `"smoke": true` so a comparison against a full
//!   baseline is flagged (the honesty rule every bench binary follows).
//! * `--out`     — output path (default `BENCH_coll.json`).
//!
//! The artifact's `results` array holds one row per
//! `(op, algorithm, size, wire dtype)` cell — each menu entry is timed both
//! full-width and bf16-compressed (compressed rows carry a `"wire"` key;
//! f32 rows keep the legacy shape) — with seconds-per-call and *logical*
//! payload GB/s (higher is better, gated);
//! `coll_winners` holds the per-`(op, size)` measured winner with its
//! speedup over the op's built-in default algorithm — the headline numbers
//! that justify the tuned selection table. A `host` stamp (threads, AVX2,
//! git rev) qualifies cross-machine comparisons.

use bench::coll::{measure_coll_wire, reps_for, CollSample, TUNE_ELEMS, TUNE_OPS};
use mesh::{CollAlgo, CommOp, WireDtype};
use minjson::Json;

struct Winner {
    op: CommOp,
    elems: usize,
    algo: CollAlgo,
    gbps: f64,
    speedup_vs_default: f64,
}

fn main() {
    let mut devices = 8usize;
    let mut base_reps = 24usize;
    let mut smoke = false;
    let mut out = "BENCH_coll.json".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--devices" => devices = it.next().and_then(|v| v.parse().ok()).expect("--devices N"),
            "--reps" => base_reps = it.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--smoke" => smoke = true,
            "--out" => out = it.next().expect("--out PATH").clone(),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: coll-bench [--devices 8] [--reps 24] [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    assert!(devices >= 2, "--devices must be at least 2");
    let sizes: &[usize] = if smoke { &TUNE_ELEMS[..2] } else { &TUNE_ELEMS };
    if smoke {
        base_reps = base_reps.min(8);
    }
    let trials = 3;
    println!(
        "coll-bench: {devices}-device live mesh, sizes {sizes:?} f32 elems, reps<= {base_reps}{}",
        if smoke { " (smoke)" } else { "" }
    );

    let mut samples: Vec<CollSample> = Vec::new();
    let mut winners: Vec<Winner> = Vec::new();
    let mut table: Vec<Vec<String>> = Vec::new();
    for op in TUNE_OPS {
        for &elems in sizes {
            if op == CommOp::ReduceScatter && elems % devices != 0 {
                continue;
            }
            // Full-width and bf16-compressed cells for every menu entry:
            // the compressed-vs-full comparison is the artifact's point,
            // while winners (and the tuned selection table downstream)
            // stay a full-width f32 contest.
            let cell: Vec<CollSample> = [WireDtype::F32, WireDtype::Bf16]
                .iter()
                .flat_map(|&w| {
                    CollAlgo::menu(op).iter().map(move |&algo| {
                        measure_coll_wire(
                            op,
                            algo,
                            devices,
                            elems,
                            reps_for(base_reps, elems),
                            trials,
                            w,
                        )
                    })
                })
                .collect();
            let best = *cell
                .iter()
                .filter(|s| s.wire.is_f32())
                .min_by(|x, y| x.secs.total_cmp(&y.secs))
                .expect("non-empty menu");
            let default = cell
                .iter()
                .find(|s| s.wire.is_f32() && s.algo == CollAlgo::default_for(op))
                .expect("default algorithm is always on the menu");
            winners.push(Winner {
                op,
                elems,
                algo: best.algo,
                gbps: best.gbps(),
                speedup_vs_default: default.secs / best.secs,
            });
            for s in &cell {
                table.push(vec![
                    op.name().to_string(),
                    elems.to_string(),
                    s.algo.name().to_string(),
                    s.wire.name().to_string(),
                    format!("{:.1}", s.secs * 1e6),
                    format!("{:.3}", s.gbps()),
                    if s.wire.is_f32() && s.algo == best.algo {
                        "<-- winner".into()
                    } else {
                        String::new()
                    },
                ]);
            }
            samples.extend(cell);
        }
    }
    println!(
        "{}",
        bench::render_table(
            &["op", "elems", "algo", "wire", "us/call", "GB/s", ""],
            &table
        )
    );
    for w in &winners {
        println!(
            "{:>13} @ {:>6} elems: {} wins at {:.3} GB/s ({:.2}x vs default {})",
            w.op.name(),
            w.elems,
            w.algo.name(),
            w.gbps,
            w.speedup_vs_default,
            CollAlgo::default_for(w.op).name(),
        );
    }

    let doc = Json::obj(vec![
        ("devices", Json::Num(devices as f64)),
        ("host", bench::host_stamp()),
        ("smoke", Json::Bool(smoke)),
        (
            "results",
            Json::Arr(
                samples
                    .iter()
                    .map(|s| {
                        let mut row = vec![
                            ("op", Json::Str(s.op.name().to_string())),
                            ("algo", Json::Str(s.algo.name().to_string())),
                            ("elems", Json::Num(s.elems as f64)),
                            ("secs", Json::Num(s.secs)),
                            ("gbps", Json::Num(s.gbps())),
                        ];
                        // f32 rows keep the legacy shape so old baselines
                        // still line up key-for-key.
                        if !s.wire.is_f32() {
                            row.push(("wire", Json::Str(s.wire.name().to_string())));
                        }
                        Json::obj(row)
                    })
                    .collect(),
            ),
        ),
        (
            "coll_winners",
            Json::Arr(
                winners
                    .iter()
                    .map(|w| {
                        Json::obj(vec![
                            ("op", Json::Str(w.op.name().to_string())),
                            ("elems", Json::Num(w.elems as f64)),
                            ("algo", Json::Str(w.algo.name().to_string())),
                            ("gbps", Json::Num(w.gbps)),
                            ("speedup_vs_default", Json::Num(w.speedup_vs_default)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&out, doc.to_string()).expect("write BENCH_coll.json");
    println!("wrote {out}");

    if smoke {
        // Self-check 1: the artifact must re-parse with minjson and carry
        // the sentinel key `regress-check compare` dispatches on.
        let text = std::fs::read_to_string(&out).expect("re-read artifact");
        let parsed = minjson::parse(&text).expect("BENCH_coll.json must re-parse with minjson");
        let winners = parsed
            .get("coll_winners")
            .and_then(|w| w.as_arr().map(|a| a.len()))
            .expect("coll_winners array");
        // Self-check 2: every measured cell must have positive bandwidth.
        let rows = parsed
            .get("results")
            .and_then(|r| r.as_arr())
            .expect("results array");
        let bad = rows
            .iter()
            .filter(|row| {
                row.get("gbps")
                    .and_then(|g| g.as_f64())
                    .map(|g| g <= 0.0)
                    .unwrap_or(true)
            })
            .count();
        if bad > 0 {
            eprintln!("FAIL: {bad} cell(s) with non-positive bandwidth");
            std::process::exit(1);
        }
        println!("smoke checks passed ({winners} winner cells, all bandwidths positive)");
    }
}
