//! GEMM engine benchmark: sweeps square and transformer-shaped products
//! across thread counts, reports GFLOP/s, and writes `BENCH_gemm.json` at
//! the repo root — the perf trajectory file the CI smoke job regenerates and
//! `optimus-cli calibrate` consumes.
//!
//! ```text
//! gemm-bench [--smoke] [--out PATH] [--trace PATH] [--threads a,b,..]
//! ```
//!
//! * `--smoke`   — small sizes, few samples, plus self-checks: the written
//!   JSON must re-parse with `minjson` and the pooled path must not be
//!   slower than the single-thread path at 256³ (>10% regression fails).
//! * `--out`     — output path (default `BENCH_gemm.json`).
//! * `--trace`   — also run one traced product and write a Chrome trace
//!   showing `gemm.pack_a` / `gemm.pack_b` / `gemm.ukr` / `pool.acquire`
//!   spans to the given path.
//! * `--threads` — comma-separated thread counts to sweep (default `1` and
//!   the host's hardware threads, deduplicated).
//!
//! The JSON carries a `host` stamp (thread count, AVX2, git rev) so the
//! regression gate can flag cross-machine comparisons, and a
//! `metrics_overhead` ratio — metrics-on vs metrics-off time at the largest
//! square shape — which the gate treats as lower-is-better (the telemetry
//! layer's "stay under 2%" budget).

use bench::{bench_fn, render_table};
use minjson::Json;
use tensor::gemm::{gemm_acc, kernel_name, Form};
use tensor::matmul::reference;
use tensor::pool;
use tensor::{Rng, Tensor};

struct Shape {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
}

#[rustfmt::skip]
const FULL_SHAPES: &[Shape] = &[
    Shape { name: "square-64", m: 64, k: 64, n: 64 },
    Shape { name: "square-128", m: 128, k: 128, n: 128 },
    Shape { name: "square-256", m: 256, k: 256, n: 256 },
    Shape { name: "square-512", m: 512, k: 512, n: 512 },
    Shape { name: "tall-skinny", m: 2048, k: 512, n: 64 },
    Shape { name: "wide", m: 64, k: 512, n: 2048 },
    Shape { name: "mlp-block", m: 512, k: 2048, n: 512 },
];

#[rustfmt::skip]
const SMOKE_SHAPES: &[Shape] = &[
    Shape { name: "square-64", m: 64, k: 64, n: 64 },
    Shape { name: "square-128", m: 128, k: 128, n: 128 },
    Shape { name: "square-256", m: 256, k: 256, n: 256 },
];

fn gflops(m: usize, k: usize, n: usize, secs: f64) -> f64 {
    2.0 * (m * k * n) as f64 / secs / 1e9
}

fn rand(dims: &[usize], seed: u64) -> Tensor {
    Tensor::randn(dims, 1.0, &mut Rng::new(seed))
}

struct Row {
    name: String,
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    secs: f64,
    gflops: f64,
}

impl Row {
    fn json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("m", Json::Num(self.m as f64)),
            ("k", Json::Num(self.k as f64)),
            ("n", Json::Num(self.n as f64)),
            ("threads", Json::Num(self.threads as f64)),
            ("secs", Json::Num(self.secs)),
            ("gflops", Json::Num(self.gflops)),
        ])
    }
}

/// Times `C += A·B` for the engine at a given thread cap (0 = uncapped).
fn time_engine(shape: &Shape, cap: usize, samples: usize) -> f64 {
    let (m, k, n) = (shape.m, shape.k, shape.n);
    let a = rand(&[m, k], 1).into_vec();
    let b = rand(&[k, n], 2).into_vec();
    let mut c = vec![0.0f32; m * n];
    let label = format!("{}/t{}", shape.name, cap);
    bench_fn("gemm", &label, samples, || {
        pool::with_thread_cap(cap, || gemm_acc(Form::NN, &mut c, m, n, &a, &b, k));
        c[0]
    })
}

/// Min-of-samples for serial (cap 1) and pooled (cap 0) on one shape, with
/// the two paths' samples **interleaved** so machine-load swings hit both
/// equally — this ratio gates CI, so it must not compare different load
/// windows. Returns `(serial_min, pooled_min)`.
fn time_serial_vs_pooled(shape: &Shape, samples: usize) -> (f64, f64) {
    let (m, k, n) = (shape.m, shape.k, shape.n);
    let a = rand(&[m, k], 1).into_vec();
    let b = rand(&[k, n], 2).into_vec();
    let mut c = vec![0.0f32; m * n];
    let mut mins = [f64::INFINITY; 2];
    for cap in [1, 0, 1, 0] {
        // warm-up, both paths
        pool::with_thread_cap(cap, || gemm_acc(Form::NN, &mut c, m, n, &a, &b, k));
    }
    for _ in 0..samples {
        for (slot, cap) in [(0usize, 1usize), (1, 0)] {
            let t0 = std::time::Instant::now();
            pool::with_thread_cap(cap, || gemm_acc(Form::NN, &mut c, m, n, &a, &b, k));
            mins[slot] = mins[slot].min(t0.elapsed().as_secs_f64());
            bench::black_box(c[0]);
        }
    }
    (mins[0], mins[1])
}

/// Min-of-samples ratio of the engine with metrics collection **on**
/// (registry enabled, device installed — the state a live `--metrics` run
/// puts every device thread in) vs fully **off**, samples interleaved like
/// [`time_serial_vs_pooled`]. The acceptance bar for the telemetry layer is
/// that this ratio stays under 1.02 at 512³: the hot GEMM loop must not pay
/// for observability it isn't using. Emitted as `metrics_overhead` in the
/// JSON, where the regression gate treats it as lower-is-better.
fn time_metrics_overhead(shape: &Shape, samples: usize) -> f64 {
    let (m, k, n) = (shape.m, shape.k, shape.n);
    let a = rand(&[m, k], 1).into_vec();
    let b = rand(&[k, n], 2).into_vec();
    let mut c = vec![0.0f32; m * n];
    let mut mins = [f64::INFINITY; 2];
    pool::with_thread_cap(0, || gemm_acc(Form::NN, &mut c, m, n, &a, &b, k));
    for _ in 0..samples {
        for (slot, on) in [(0usize, false), (1, true)] {
            if on {
                metrics::enable();
                metrics::device_install();
            }
            let t0 = std::time::Instant::now();
            pool::with_thread_cap(0, || gemm_acc(Form::NN, &mut c, m, n, &a, &b, k));
            mins[slot] = mins[slot].min(t0.elapsed().as_secs_f64());
            if on {
                metrics::device_finish(0);
                metrics::disable();
                let _ = metrics::drain();
            }
            bench::black_box(c[0]);
        }
    }
    mins[1] / mins[0]
}

/// Min-of-samples for the single-threaded engine vs the seed `i-k-j` NN
/// kernel, interleaved for the same reason as [`time_serial_vs_pooled`]:
/// the headline speedup must reflect kernel quality, not which of the two
/// happened to run in the quieter load window. Returns
/// `(engine_min, seed_min)`.
fn time_engine_vs_seed(shape: &Shape, samples: usize) -> (f64, f64) {
    let (m, k, n) = (shape.m, shape.k, shape.n);
    let a = rand(&[m, k], 1).into_vec();
    let b = rand(&[k, n], 2).into_vec();
    let mut c = vec![0.0f32; m * n];
    let mut mins = [f64::INFINITY; 2];
    pool::with_thread_cap(1, || gemm_acc(Form::NN, &mut c, m, n, &a, &b, k));
    reference::seed_nn(&mut c, &a, &b, k, n);
    for _ in 0..samples {
        let t0 = std::time::Instant::now();
        pool::with_thread_cap(1, || gemm_acc(Form::NN, &mut c, m, n, &a, &b, k));
        mins[0] = mins[0].min(t0.elapsed().as_secs_f64());
        let t0 = std::time::Instant::now();
        reference::seed_nn(&mut c, &a, &b, k, n);
        mins[1] = mins[1].min(t0.elapsed().as_secs_f64());
        bench::black_box(c[0]);
    }
    (mins[0], mins[1])
}

fn run_traced_product(path: &str, size: usize) {
    let a = rand(&[size, size], 1);
    let b = rand(&[size, size], 2);
    trace::start_wall();
    let _g = pool::enter_device();
    let c = trace::span("compute", || tensor::matmul_nn(&a, &b));
    drop(_g);
    std::hint::black_box(c);
    let device = trace::finish(0).expect("collector installed above");
    let json = trace::chrome_trace(std::slice::from_ref(&device)).to_string();
    std::fs::write(path, json).expect("write trace file");
    println!(
        "wrote Chrome trace ({} events) to {path}",
        device.events.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = "BENCH_gemm.json".to_string();
    let mut trace_out: Option<String> = None;
    let mut threads: Option<Vec<usize>> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out needs a path").clone();
            }
            "--trace" => {
                i += 1;
                trace_out = Some(args.get(i).expect("--trace needs a path").clone());
            }
            "--threads" => {
                i += 1;
                let list = args.get(i).expect("--threads needs a list");
                threads = Some(
                    list.split(',')
                        .map(|s| s.trim().parse().expect("thread count"))
                        .collect(),
                );
            }
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: gemm-bench [--smoke] [--out PATH] [--trace PATH] [--threads a,b]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let hw = pool::pool().hw_threads();
    let sweep = threads.unwrap_or_else(|| {
        let mut t = vec![1];
        if hw > 1 {
            t.push(hw);
        }
        t
    });
    let samples = if smoke { 3 } else { 7 };
    let shapes = if smoke { SMOKE_SHAPES } else { FULL_SHAPES };

    println!(
        "gemm-bench: kernel={} hw_threads={hw} mode={}",
        kernel_name(),
        if smoke { "smoke" } else { "full" },
    );

    let mut rows: Vec<Row> = Vec::new();
    for shape in shapes {
        for &t in &sweep {
            let secs = time_engine(shape, t, samples);
            rows.push(Row {
                name: shape.name.to_string(),
                m: shape.m,
                k: shape.k,
                n: shape.n,
                threads: if t == 0 { hw } else { t },
                secs,
                gflops: gflops(shape.m, shape.k, shape.n, secs),
            });
        }
    }

    // Seed baseline at the largest square shape in this mode.
    let baseline_shape = shapes
        .iter()
        .rfind(|s| s.name.starts_with("square"))
        .expect("a square shape");
    let (engine_secs, seed_secs) = time_engine_vs_seed(baseline_shape, samples.max(5));
    let seed_gflops = gflops(
        baseline_shape.m,
        baseline_shape.k,
        baseline_shape.n,
        seed_secs,
    );
    let engine_gflops = gflops(
        baseline_shape.m,
        baseline_shape.k,
        baseline_shape.n,
        engine_secs,
    );
    let speedup = engine_gflops / seed_gflops;
    println!(
        "single-thread speedup vs seed at {}: {:.2}x ({:.2} vs {:.2} GFLOP/s)",
        baseline_shape.name, speedup, engine_gflops, seed_gflops,
    );

    // Pooled vs serial at 256³ (the CI smoke criterion). On a single-core
    // host the pooled path degenerates to the same serial loop, so the
    // ratio hovers around 1.0. Min-of-samples, not median: this ratio gates
    // CI, and the min is far more stable under runner load.
    let s256 = Shape {
        name: "square-256",
        m: 256,
        k: 256,
        n: 256,
    };
    let (serial_secs, pooled_secs) = time_serial_vs_pooled(&s256, samples.max(9));
    let serial_g = gflops(256, 256, 256, serial_secs);
    let pooled_g = gflops(256, 256, 256, pooled_secs);
    println!(
        "pooled vs serial at 256^3: {:.2} vs {:.2} GFLOP/s (ratio {:.2})",
        pooled_g,
        serial_g,
        pooled_g / serial_g,
    );

    // Telemetry overhead at the largest square shape (512³ full, 256³
    // smoke): metrics-on vs metrics-off time ratio, acceptance bar < 2%.
    let overhead = time_metrics_overhead(baseline_shape, samples.max(5));
    println!(
        "metrics overhead at {}: {:.4}x (enabled/disabled, min-of-samples)",
        baseline_shape.name, overhead,
    );

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{}x{}x{}", r.m, r.k, r.n),
                r.threads.to_string(),
                format!("{:.4}", r.secs),
                format!("{:.2}", r.gflops),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["shape", "mkn", "threads", "secs", "GFLOP/s"], &table)
    );

    let doc = Json::obj(vec![
        ("kernel", Json::Str(kernel_name().to_string())),
        ("hw_threads", Json::Num(hw as f64)),
        ("host", bench::host_stamp()),
        ("smoke", Json::Bool(smoke)),
        ("metrics_overhead", Json::Num(overhead)),
        ("results", Json::Arr(rows.iter().map(Row::json).collect())),
        (
            "seed_baseline",
            Json::obj(vec![
                ("name", Json::Str(baseline_shape.name.to_string())),
                ("secs", Json::Num(seed_secs)),
                ("gflops", Json::Num(seed_gflops)),
            ]),
        ),
        ("speedup_vs_seed", Json::Num(speedup)),
        (
            "pooled_vs_serial_256",
            Json::obj(vec![
                ("serial_gflops", Json::Num(serial_g)),
                ("pooled_gflops", Json::Num(pooled_g)),
                ("ratio", Json::Num(pooled_g / serial_g)),
            ]),
        ),
    ]);
    std::fs::write(&out, doc.to_string()).expect("write BENCH_gemm.json");
    println!("wrote {out}");

    if let Some(path) = &trace_out {
        run_traced_product(path, if smoke { 256 } else { 512 });
    }

    if smoke {
        // Self-check 1: the artifact must parse back with minjson.
        let text = std::fs::read_to_string(&out).expect("re-read artifact");
        let parsed = minjson::parse(&text).expect("BENCH_gemm.json must re-parse with minjson");
        let ratio = parsed
            .get("pooled_vs_serial_256")
            .and_then(|o| o.get("ratio"))
            .and_then(|v| v.as_f64())
            .expect("ratio field");
        // Self-check 2: the pooled path must not be slower than serial at
        // 256³ (10% tolerance absorbs timer noise on loaded CI runners).
        if ratio < 0.9 {
            eprintln!("FAIL: pooled path is {ratio:.2}x of serial at 256^3 (limit 0.9)");
            std::process::exit(1);
        }
        println!("smoke checks passed (pooled/serial ratio {ratio:.2})");
    }
}
