//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [table1|table2|table3|fig7|fig8|fig9|projection|paradigms|trace|validate|all]
//! ```
//!
//! Model numbers come from the calibrated Frontera profile (see
//! EXPERIMENTS.md); the paper's published numbers are printed alongside.
//! `trace` records one training step's phase-scoped timeline on a 4×4
//! dry-run mesh and cross-checks it against Table 1 (the worked example of
//! OBSERVABILITY.md). `validate` runs the *executed* thread-mesh simulation
//! at small scale and checks the communication volumes against the Table 1
//! closed forms, and the distributed losses against the serial reference.

use bench::{f3, f4, render_table, write_csv};
use perf::memory;
use perf::scaling::{self, optimus_stem_times, strong_scaling, weak_scaling, LAYERS, SEQ};
use perf::table1::{megatron_layer_costs, optimus_layer_costs};
use perf::{CostModel, HardwareProfile};

/// Paper Table 2: (fwd/seq, bwd/seq, throughput, inference).
const PAPER_WEAK_MEG: [(f64, f64, f64, f64); 4] = [
    (0.0793, 0.2613, 2.9363, 13.1047),
    (0.2081, 0.5149, 1.3831, 4.8046),
    (0.3379, 0.7955, 0.8823, 2.9596),
    (0.4638, 1.0963, 0.6410, 2.1560),
];
const PAPER_WEAK_OPT: [(f64, f64, f64, f64); 4] = [
    (0.0985, 0.2979, 2.5229, 10.1502),
    (0.1764, 0.5312, 1.4134, 5.6704),
    (0.1901, 0.5759, 1.3055, 5.2593),
    (0.2589, 0.7935, 0.9502, 3.8625),
];
/// Paper Table 3.
const PAPER_STRONG_MEG: [(f64, f64, f64, f64); 4] = [
    (0.1225, 0.4749, 1.6737, 8.1616),
    (0.1143, 0.4293, 1.8397, 8.7521),
    (0.1212, 0.4512, 1.7470, 8.2503),
    (0.1195, 0.5306, 1.8180, 8.3711),
];
const PAPER_STRONG_OPT: [(f64, f64, f64, f64); 4] = [
    (0.1888, 0.5691, 1.3195, 5.2966),
    (0.1950, 0.5704, 1.4095, 5.1285),
    (0.1625, 0.4764, 1.5653, 6.1542),
    (0.1253, 0.3716, 2.0123, 7.9808),
];

fn table1() {
    println!(
        "== Table 1: per-layer, per-device communication (f32 elems) and computation (MACs) =="
    );
    println!("   symbolic entries evaluated at b=32, s=512, h=4096, p=16\n");
    let (b, s, h, p) = (32, 512, 4096, 16);
    let m = megatron_layer_costs(b, s, h, p);
    let o = optimus_layer_costs(b, s, h, p);
    let rows = vec![
        vec![
            "forward communication".into(),
            format!("{:.3e}", m.fwd_comm),
            format!("{:.3e}", o.fwd_comm),
        ],
        vec![
            "backward communication".into(),
            format!("{:.3e}", m.bwd_comm),
            format!("{:.3e}", o.bwd_comm),
        ],
        vec![
            "forward computation".into(),
            format!("{:.3e}", m.fwd_macs),
            format!("{:.3e}", o.fwd_macs),
        ],
        vec![
            "backward computation".into(),
            format!("{:.3e}", m.bwd_macs),
            format!("{:.3e}", o.bwd_macs),
        ],
    ];
    let t = render_table(&["item \\ scheme", "Megatron", "Optimus"], &rows);
    println!("{t}");
    let _ = write_csv("table1", &["item", "megatron", "optimus"], &rows);
}

fn scaling_table(
    title: &str,
    csv: &str,
    rows_model: &[scaling::ScalingRow],
    paper: &[(f64, f64, f64, f64)],
) {
    println!("-- {title} --");
    let mut rows = Vec::new();
    for (r, p) in rows_model.iter().zip(paper.iter()) {
        rows.push(vec![
            r.nodes.to_string(),
            r.gpus.to_string(),
            r.batch.to_string(),
            r.hidden.to_string(),
            r.heads.to_string(),
            format!("{} ({})", f4(r.fwd_per_seq), f4(p.0)),
            format!("{} ({})", f4(r.bwd_per_seq), f4(p.1)),
            format!("{} ({})", f4(r.throughput), f4(p.2)),
            format!("{} ({})", f4(r.inference), f4(p.3)),
        ]);
    }
    let t = render_table(
        &[
            "#nodes",
            "#GPUs",
            "batch",
            "hidden",
            "#heads",
            "fwd/seq s (paper)",
            "bwd/seq s (paper)",
            "throughput seq/s (paper)",
            "inference seq/s (paper)",
        ],
        &rows,
    );
    println!("{t}");
    let _ = write_csv(
        csv,
        &[
            "nodes",
            "gpus",
            "batch",
            "hidden",
            "heads",
            "fwd_per_seq",
            "bwd_per_seq",
            "throughput",
            "inference",
        ],
        &rows,
    );
}

fn table2(profile: &HardwareProfile) {
    println!("== Table 2: weak scaling (h ∝ q, n ∝ p, s=512, N=24) — model (paper) ==\n");
    let (meg, opt) = weak_scaling(profile);
    scaling_table("Megatron", "table2_megatron", &meg, &PAPER_WEAK_MEG);
    scaling_table("Optimus", "table2_optimus", &opt, &PAPER_WEAK_OPT);
    let r = opt[3].throughput / meg[3].throughput;
    let ri = opt[3].inference / meg[3].inference;
    println!(
        "64-GPU speedup Optimus/Megatron: training {:.2}x (paper 1.48x), inference {:.2}x (paper 1.79x)\n",
        r, ri
    );
}

fn table3(profile: &HardwareProfile) {
    println!(
        "== Table 3: strong scaling (fixed problem, h=3072, s=512, N=24) — model (paper) ==\n"
    );
    let (meg, opt) = strong_scaling(profile);
    scaling_table(
        "Megatron (b=12)",
        "table3_megatron",
        &meg,
        &PAPER_STRONG_MEG,
    );
    scaling_table("Optimus (b=24)", "table3_optimus", &opt, &PAPER_STRONG_OPT);
}

fn fig7(profile: &HardwareProfile) {
    println!("== Figure 7: weak (left) and strong (right) scaling efficiency ==\n");
    let (wm, wo) = weak_scaling(profile);
    let mut rows = Vec::new();
    for (m, o) in wm.iter().zip(&wo) {
        rows.push(vec![m.gpus.to_string(), f3(m.efficiency), f3(o.efficiency)]);
    }
    println!("weak scaling efficiency  E = T_serial / (p · T_p)");
    let t = render_table(&["#GPUs", "Megatron", "Optimus"], &rows);
    println!("{t}");
    let _ = write_csv("fig7_weak", &["gpus", "megatron_eff", "optimus_eff"], &rows);

    let (sm, so) = strong_scaling(profile);
    let mut rows = Vec::new();
    for (m, o) in sm.iter().zip(&so) {
        rows.push(vec![
            m.gpus.to_string(),
            f3(m.efficiency),
            f3(o.efficiency),
            f3(m.speedup),
            f3(o.speedup),
        ]);
    }
    println!("strong scaling: efficiency E = T_serial/(p·T_p) and speedup S = T_serial/T_p");
    println!("(the paper's right panel shows Megatron falling and Optimus rising with a 64-GPU");
    println!(" crossover; in this model the crossover appears in E, S and raw throughput)");
    let t = render_table(&["#GPUs", "Meg E", "Opt E", "Meg S", "Opt S"], &rows);
    println!("{t}");
    let _ = write_csv(
        "fig7_strong",
        &[
            "gpus",
            "megatron_eff",
            "optimus_eff",
            "megatron_speedup",
            "optimus_speedup",
        ],
        &rows,
    );
}

fn fig8(profile: &HardwareProfile) {
    println!("== Figure 8: naive vs bunched GPU arrangement ==\n");
    use mesh::{Arrangement, Topology};

    // (a) The paper's claim at the collective level: a column broadcast
    // crowds 4 concurrent flows per uplink under the naive placement but
    // only 2 under the bunched one.
    println!("column broadcast of one 64 MB panel on a 4x4 mesh (the paper's example):");
    let mut rows = Vec::new();
    let col: Vec<usize> = (0..4).map(|i| i * 4 + 1).collect();
    let elems = 16 << 20;
    for (name, arr) in [
        ("naive", Arrangement::Naive),
        ("bunched", Arrangement::Bunched),
    ] {
        let cm = CostModel::new(profile.clone(), Topology::new(4, 4, arr));
        let topo = Topology::new(4, 4, arr);
        rows.push(vec![
            name.to_string(),
            topo.nodes_spanned(&col).to_string(),
            f4(cm.broadcast_time(&col, elems)),
        ]);
    }
    let t = render_table(&["arrangement", "nodes spanned", "bcast time s"], &rows);
    println!("{t}");
    let _ = write_csv(
        "fig8_collective",
        &["arrangement", "nodes_spanned", "bcast_s"],
        &rows,
    );

    // (b) Whole-stem ablation: the aggregate picture depends on the traffic
    // mix. Activation panels (the 7bsh term) ride mesh *rows*, which the
    // naive placement keeps intra-node, so at the paper's weak-scaling
    // shapes naive wins overall even though bunched wins every column
    // collective — an honest model-level finding recorded in EXPERIMENTS.md.
    println!("whole-stem iteration time (fwd+bwd) under each arrangement:");
    let mut rows = Vec::new();
    for &(_, gpus, q, h, _, _, b) in &scaling::WEAK_CONFIGS {
        if gpus <= profile.gpus_per_node {
            continue; // single node: arrangements coincide
        }
        let t = |arr| {
            let cm = CostModel::new(
                profile.clone(),
                Topology::new(q, profile.gpus_per_node, arr),
            );
            let (fwd, bwd) = optimus_stem_times(&cm, b, SEQ, h, LAYERS, q);
            fwd + bwd
        };
        let naive = t(Arrangement::Naive);
        let bunched = t(Arrangement::Bunched);
        rows.push(vec![
            gpus.to_string(),
            format!("{q}x{q}"),
            f3(naive),
            f3(bunched),
            format!("{:.2}x", naive / bunched),
        ]);
    }
    let t = render_table(
        &[
            "#GPUs",
            "mesh",
            "naive iter s",
            "bunched iter s",
            "naive/bunched",
        ],
        &rows,
    );
    println!("{t}");
    let _ = write_csv(
        "fig8_stem",
        &["gpus", "mesh", "naive_s", "bunched_s", "ratio"],
        &rows,
    );
}

fn fig9(profile: &HardwareProfile) {
    println!("== Figure 9: memory limits — max batch ξ(η): runs with ξ, OOMs at η ==\n");
    let (meg, opt) = memory::fig9(profile, 4);
    let mut rows = Vec::new();
    for (m, o) in meg.iter().zip(&opt) {
        rows.push(vec![
            m.gpus.to_string(),
            m.hidden.to_string(),
            format!("{} ({})", m.runs, m.ooms),
            format!("{} ({})", o.runs, o.ooms),
            format!("{:.1}x", o.runs as f64 / m.runs.max(1) as f64),
        ]);
    }
    let t = render_table(
        &[
            "#GPUs",
            "hidden",
            "Megatron max b",
            "Optimus max b",
            "advantage",
        ],
        &rows,
    );
    println!("{t}");
    println!("paper: Optimus runs b=480 on 64 GPUs, 8x Megatron's limit\n");
    let _ = write_csv(
        "fig9",
        &[
            "gpus",
            "hidden",
            "megatron_runs",
            "optimus_runs",
            "advantage",
        ],
        &rows,
    );
}

fn paradigms(profile: &HardwareProfile) {
    println!("== Paradigm comparison (beyond the paper): pipeline vs tensor parallelism ==\n");
    use mesh::Topology;
    use perf::paradigms::{attention_partition_volumes, pipeline_stem_times};
    use perf::scaling::megatron_stem_times;

    println!("stem step time at the paper's weak-scaling points (seconds/iteration):");
    let mut rows = Vec::new();
    for &(_, gpus, q, h, _, b_meg, b_opt) in &scaling::WEAK_CONFIGS {
        let gpn = profile.gpus_per_node.min(gpus);
        let cm_flat = CostModel::new(profile.clone(), Topology::flat(gpus, gpn));
        let cm_mesh = CostModel::new(
            profile.clone(),
            Topology::new(q, gpn, mesh::Arrangement::Bunched),
        );
        let (mf, mb) = megatron_stem_times(&cm_flat, b_meg, SEQ, h, LAYERS, gpus);
        let (of, ob) = optimus_stem_times(&cm_mesh, b_opt, SEQ, h, LAYERS, q);
        // Pipeline with as many stages as devices (layers=24 divides by 4,
        // not by 36/64 — cap stages at a divisor of 24).
        let stages = (1..=gpus.min(LAYERS))
            .rev()
            .find(|s| LAYERS.is_multiple_of(*s))
            .unwrap();
        let (pf, pb) = pipeline_stem_times(&cm_flat, b_opt, SEQ, h, LAYERS, stages, 8);
        rows.push(vec![
            gpus.to_string(),
            h.to_string(),
            f3((mf + mb) / b_meg as f64 * b_opt as f64), // normalised to b_opt
            f3(of + ob),
            format!("{} ({} stages)", f3(pf + pb), stages),
        ]);
    }
    let t = render_table(
        &[
            "#GPUs",
            "hidden",
            "megatron (scaled)",
            "optimus",
            "pipeline",
        ],
        &rows,
    );
    println!("{t}");
    let _ = write_csv(
        "paradigms",
        &["gpus", "hidden", "megatron_s", "optimus_s", "pipeline_s"],
        &rows,
    );

    println!("attention partition (Sec. 3.2.1): per-layer comm volume, f32 elems/device:");
    let mut rows = Vec::new();
    for &(_, gpus, _, h, n, _, b_opt) in &scaling::WEAK_CONFIGS {
        let v = attention_partition_volumes(b_opt, SEQ, h, n, gpus);
        rows.push(vec![
            gpus.to_string(),
            format!("{:.3e}", v.batch_hidden),
            format!("{:.3e}", v.seq_hidden),
            format!("{:.2}x", v.seq_hidden / v.batch_hidden),
        ]);
    }
    let t = render_table(
        &["#GPUs", "(b,h) adopted", "(s,h) rejected", "penalty"],
        &rows,
    );
    println!("{t}");
    let _ = write_csv(
        "attention_partition",
        &["gpus", "adopted", "rejected", "penalty"],
        &rows,
    );
}

fn projection(profile: &HardwareProfile) {
    println!("== Projection: weak scaling extended to 1024 devices (beyond the paper) ==\n");
    use perf::projection::{torus_profile, weak_scaling_projection};
    for (name, prof) in [
        ("frontera", profile.clone()),
        ("torus (TPU-like)", torus_profile()),
    ] {
        println!("-- {name} --");
        let pts = weak_scaling_projection(&prof);
        let mut rows = Vec::new();
        for p in &pts {
            rows.push(vec![
                p.gpus.to_string(),
                p.hidden.to_string(),
                p.batch_megatron.to_string(),
                p.batch_optimus.to_string(),
                f3(p.megatron_throughput),
                f3(p.optimus_throughput),
                format!("{:.2}x", p.advantage),
            ]);
        }
        let t = render_table(
            &[
                "#GPUs",
                "hidden",
                "b_meg",
                "b_opt",
                "meg thr",
                "opt thr",
                "advantage",
            ],
            &rows,
        );
        println!("{t}");
        let _ = write_csv(
            &format!("projection_{}", name.split(' ').next().unwrap()),
            &[
                "gpus",
                "hidden",
                "b_meg",
                "b_opt",
                "meg_thr",
                "opt_thr",
                "advantage",
            ],
            &rows,
        );
    }
}

/// Traces one Optimus training step on a 4×4 dry-run mesh (timeline stamped
/// with α-β model time), prints the per-phase summary, and cross-checks the
/// recorded volumes against the Table 1 closed forms — the worked example of
/// EXPERIMENTS.md and OBSERVABILITY.md.
fn trace_demo(profile: &HardwareProfile) {
    use mesh::{Arrangement, Communicator, Mesh, Mesh2d, Topology};
    use optimus_core::{OptimusConfig, OptimusModel};
    use perf::tracecheck;
    use tensor::Rng;

    println!("== Trace: one Optimus train step on a 4x4 dry-run mesh ==\n");
    let q = 4;
    let ocfg = OptimusConfig {
        q,
        batch: 8,
        seq: 16,
        hidden: 64,
        heads: 8,
        vocab: 32,
        layers: 2,
        causal: true,
        checkpoint: true,
        fused_attention: false,
    };
    let mut rng = Rng::new(0x7ACE);
    let n = ocfg.batch * ocfg.seq;
    let tokens: Vec<usize> = (0..n).map(|_| rng.below(ocfg.vocab)).collect();
    let labels: Vec<usize> = (0..n).map(|_| rng.below(ocfg.vocab)).collect();
    let cost = CostModel::new(
        profile.clone(),
        Topology::new(q, profile.gpus_per_node, Arrangement::Bunched),
    );
    let (_, _, traces) = Mesh2d::dry_run_traced(q, cost.ns_pricer(), |g| {
        let mut m = OptimusModel::new(&ocfg, 7, g);
        m.train_step(g, &tokens, &labels, 0.1)
    });
    let rows = trace::summarize(&traces, |m| cost.meta_time(m));
    print!("{}", trace::render_summary(&rows));
    let totals = tracecheck::op_totals(&cost, &traces);
    println!(
        "max relative |measured - modeled| gap across op kinds: {:.2e} (dry-run is priced by the model)\n",
        tracecheck::max_rel_gap(&totals)
    );

    // Table 1 cross-check, Megatron column: one layer forward on p = q²
    // devices does two ring all-reduces of b·s·h elements; the wire volume
    // per device is 4(p−1)/p·bsh — exactly Table 1's forward entry.
    let p = q * q;
    let model_cfg = serial::ModelConfig {
        batch: ocfg.batch,
        seq: ocfg.seq,
        hidden: ocfg.hidden,
        heads: 16, // heads must divide by p for the 1D scheme
        vocab: ocfg.vocab,
        layers: 1,
        causal: true,
    };
    let mcfg = megatron::MegatronConfig::new(model_cfg, p);
    let full = serial::LayerParams::init(0, 0, model_cfg.hidden);
    let mut rng = Rng::new(1);
    let x = tensor::Tensor::randn(&[model_cfg.tokens(), model_cfg.hidden], 1.0, &mut rng);
    let flat = CostModel::new(profile.clone(), Topology::flat(p, profile.gpus_per_node));
    let (_, _, mtraces) = Mesh::dry_run_traced(p, flat.ns_pricer(), |ctx| {
        let world = mesh::Group::world(p);
        let lp = megatron::Layer1dParams::from_full(&full, model_cfg.hidden, p, ctx.rank());
        megatron::layer1d_forward(ctx, &world, &mcfg, &lp, &x);
    });
    let mtotals = tracecheck::op_totals(&flat, &mtraces);
    let ar = mtotals
        .iter()
        .find(|t| t.kind == "AllReduce")
        .expect("layer forward all-reduces");
    let wire_per_dev = ar.wire_elems / p;
    let table1 = megatron_layer_costs(model_cfg.batch, model_cfg.seq, model_cfg.hidden, p).fwd_comm;
    println!(
        "[table 1 cross-check] traced AllReduce wire volume {} elems/device, closed form 4(p-1)/p*bsh = {} -> {}",
        wire_per_dev,
        table1,
        if (wire_per_dev as f64 - table1).abs() < 1e-6 {
            "OK"
        } else {
            "MISMATCH"
        }
    );
    assert!((wire_per_dev as f64 - table1).abs() < 1e-6);
    println!();
}

/// Executes the real thread-mesh simulation at small scale and validates
/// (a) communication volumes against Table 1 and (b) numerics against the
/// serial reference.
fn validate() {
    use mesh::{CommOp, Group, Mesh, Mesh2d};
    use optimus_core::{layer2d_forward, Layer2dParams, OptimusConfig, OptimusModel};
    use serial::{LayerParams, ModelConfig, SerialModel};
    use summa::distribute;
    use tensor::{Rng, Tensor};

    println!("== Validation: executed simulation vs closed forms and serial reference ==\n");

    // (a) Megatron forward comm volume = 4(p-1)/p * bsh per layer.
    let model_cfg = ModelConfig {
        batch: 4,
        seq: 8,
        hidden: 16,
        heads: 4,
        vocab: 32,
        layers: 1,
        causal: false,
    };
    let p = 4;
    let full = LayerParams::init(0, 0, model_cfg.hidden);
    let mcfg = megatron::MegatronConfig::new(model_cfg, p);
    let mut rng = Rng::new(0);
    let x = Tensor::randn(&[model_cfg.tokens(), model_cfg.hidden], 1.0, &mut rng);
    let (_, logs) = Mesh::run_with_logs(p, |ctx| {
        let world = Group::world(p);
        let lp = megatron::Layer1dParams::from_full(&full, model_cfg.hidden, p, ctx.rank());
        megatron::layer1d_forward(ctx, &world, &mcfg, &lp, &x);
    });
    let bsh = model_cfg.tokens() * model_cfg.hidden;
    let wire: usize = logs[0]
        .ops
        .iter()
        .filter(|o| o.op == CommOp::AllReduce)
        .map(|o| 2 * (o.group_size - 1) * o.elems / o.group_size)
        .sum();
    let expect = megatron_layer_costs(model_cfg.batch, model_cfg.seq, model_cfg.hidden, p).fwd_comm;
    println!(
        "[megatron fwd comm]   executed ring wire volume {} elems, Table 1 gives {} -> {}",
        wire,
        expect,
        if (wire as f64 - expect).abs() < 1e-6 {
            "OK"
        } else {
            "MISMATCH"
        }
    );
    assert!((wire as f64 - expect).abs() < 1e-6);
    let _ = bsh;

    // (b) Optimus forward SUMMA broadcast payloads = (7bsh + 12h^2)/q per
    // device per layer (the log factor is the tree depth, not payload).
    let ocfg = OptimusConfig {
        q: 2,
        batch: 4,
        seq: 8,
        hidden: 16,
        heads: 4,
        vocab: 32,
        layers: 1,
        causal: false,
        checkpoint: false,
        fused_attention: false,
    };
    let (_, logs) = Mesh2d::run_with_logs(ocfg.q, |g| {
        let lp = Layer2dParams::from_full(g, &full);
        layer2d_forward(g, &ocfg, &lp, &distribute(g, &x));
    });
    let (b, s, h, q) = (ocfg.batch, ocfg.seq, ocfg.hidden, ocfg.q);
    let summa_payload = (7 * b * s * h + 12 * h * h) / q;
    // Exclude the small bias/LN parameter broadcasts (≤ 4h/q elems) to
    // isolate the SUMMA panels (≥ h²/q² elems).
    let measured: usize = logs[0]
        .ops
        .iter()
        .filter(|o| o.op == CommOp::Broadcast && o.elems >= h * h / (q * q))
        .map(|o| o.elems)
        .sum();
    println!(
        "[optimus fwd panels]  executed broadcast payload {} elems, closed form {} -> {}",
        measured,
        summa_payload,
        if measured == summa_payload {
            "OK"
        } else {
            "MISMATCH"
        }
    );
    assert_eq!(measured, summa_payload);

    // (c) Numerics: serial vs Megatron vs Optimus losses.
    let mut rng = Rng::new(1);
    let tokens: Vec<usize> = (0..model_cfg.tokens())
        .map(|_| rng.below(model_cfg.vocab))
        .collect();
    let labels: Vec<usize> = (0..model_cfg.tokens())
        .map(|_| rng.below(model_cfg.vocab))
        .collect();
    let l_serial = SerialModel::new(model_cfg, 7).lm_loss(&tokens, &labels);
    let l_meg = Mesh::run(p, |ctx| {
        megatron::MegatronModel::new(mcfg, 7, ctx).lm_loss(ctx, &tokens, &labels)
    })[0];
    let cfg2 = OptimusConfig { layers: 2, ..ocfg };
    let model_cfg2 = ModelConfig {
        layers: 2,
        ..model_cfg
    };
    let l_serial2 = SerialModel::new(model_cfg2, 7).lm_loss(&tokens, &labels);
    let l_opt = Mesh2d::run(cfg2.q, |g| {
        OptimusModel::new(&cfg2, 7, g).lm_loss(g, &tokens, &labels)
    })[0];
    println!(
        "[loss equivalence]    serial {l_serial:.6} vs megatron {l_meg:.6}; serial(2L) {l_serial2:.6} vs optimus {l_opt:.6} -> {}",
        if (l_serial - l_meg).abs() < 1e-4 && (l_serial2 - l_opt).abs() < 1e-4 { "OK" } else { "MISMATCH" }
    );
    assert!((l_serial - l_meg).abs() < 1e-4);
    assert!((l_serial2 - l_opt).abs() < 1e-4);

    // (d) Fig. 9 mechanism at simulation scale: measured peak activation
    // bytes per device, checkpointing on vs off.
    let mut cfg_mem = OptimusConfig::tiny(2);
    cfg_mem.layers = 4;
    let mut rng = Rng::new(2);
    let tokens: Vec<usize> = (0..cfg_mem.batch * cfg_mem.seq)
        .map(|_| rng.below(cfg_mem.vocab))
        .collect();
    let labels: Vec<usize> = (0..cfg_mem.batch * cfg_mem.seq)
        .map(|_| rng.below(cfg_mem.vocab))
        .collect();
    let peak = |ck: bool| {
        let mut c = cfg_mem;
        c.checkpoint = ck;
        Mesh2d::run(c.q, |g| {
            let mut m = OptimusModel::new(&c, 5, g);
            m.train_step_detailed(g, &tokens, &labels, 0.1)
                .peak_activation_bytes
        })[0]
    };
    let (off, on) = (peak(false), peak(true));
    println!(
        "[checkpoint memory]   peak activation bytes/device: {} without vs {} with checkpointing ({:.2}x) -> {}",
        off,
        on,
        off as f64 / on as f64,
        if on < off { "OK" } else { "MISMATCH" }
    );
    assert!(on < off);
    println!("\nall validations passed");
}

fn main() {
    let profile = HardwareProfile::frontera_rtx5000();
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "table1" => table1(),
        "table2" => table2(&profile),
        "table3" => table3(&profile),
        "fig7" => fig7(&profile),
        "fig8" => fig8(&profile),
        "fig9" => fig9(&profile),
        "projection" => projection(&profile),
        "paradigms" => paradigms(&profile),
        "trace" => trace_demo(&profile),
        "validate" => validate(),
        "all" => {
            table1();
            table2(&profile);
            table3(&profile);
            fig7(&profile);
            fig8(&profile);
            fig9(&profile);
            projection(&profile);
            paradigms(&profile);
            trace_demo(&profile);
            validate();
        }
        other => {
            eprintln!("unknown artifact '{other}'");
            eprintln!("usage: repro [table1|table2|table3|fig7|fig8|fig9|projection|paradigms|trace|validate|all]");
            std::process::exit(2);
        }
    }
}
