//! Step-level end-to-end benchmark: times a live Optimus train step on 2×2
//! and 4×4 thread meshes with the double-buffered panel-prefetch schedule on
//! and off, and writes `BENCH_step.json` at the repo root — the trajectory
//! file recording overlap gains PR over PR (alongside `BENCH_gemm.json` for
//! the GEMM engine).
//!
//! ```text
//! step-bench [--smoke] [--out PATH]
//! ```
//!
//! * `--smoke` — fewer samples/steps, plus self-checks: the JSON must
//!   re-parse with `minjson`, the overlapped and synchronous schedules must
//!   produce bitwise-identical losses, and the overlapped step must not be
//!   slower than the synchronous one beyond a noise bound (the two paths'
//!   samples are interleaved so load swings hit both equally; on a
//!   single-core host the win comes from removing blocking-receive
//!   sleep/wake chains, so the bound is lenient).
//! * `--out`   — output path (default `BENCH_step.json`).

use bench::render_table;
use mesh::Mesh2d;
use minjson::Json;
use optimus_core::{OptimusConfig, OptimusModel};
use std::time::Instant;
use tensor::Rng;

const PATTERN_PERIOD: usize = 5;

/// One mesh size's model: small enough that a 4×4 mesh (16 device threads)
/// stays fast on a laptop core, big enough that panels dominate envelopes.
fn config(q: usize) -> OptimusConfig {
    OptimusConfig {
        q,
        batch: 4,
        seq: 16,
        hidden: 32,
        heads: 4,
        vocab: 16,
        layers: 2,
        causal: true,
        checkpoint: true,
        fused_attention: false,
    }
}

fn pattern_batch(cfg: &OptimusConfig, rng: &mut Rng) -> (Vec<usize>, Vec<usize>) {
    let mut tokens = Vec::with_capacity(cfg.batch * cfg.seq);
    let mut labels = Vec::with_capacity(cfg.batch * cfg.seq);
    for _ in 0..cfg.batch {
        let phase = rng.below(PATTERN_PERIOD);
        for t in 0..cfg.seq {
            tokens.push((phase + t) % PATTERN_PERIOD);
            labels.push((phase + t + 1) % PATTERN_PERIOD);
        }
    }
    (tokens, labels)
}

/// Runs one mesh with `steps` training steps after a warm-up step and
/// returns (seconds per step measured on rank 0, final loss). The timer
/// starts after a barrier-like warm-up so thread spawn and first-touch
/// allocation stay out of the measurement.
fn run_steps(q: usize, overlap: bool, steps: usize, seed: u64) -> (f64, f32) {
    let cfg = config(q);
    cfg.validate();
    let mut rng = Rng::new(seed);
    let batches: Vec<_> = (0..=steps).map(|_| pattern_batch(&cfg, &mut rng)).collect();
    let out = Mesh2d::run(q, |g| {
        let g = g.with_overlap(overlap);
        let mut m = OptimusModel::new(&cfg, seed, &g);
        let (wt, wl) = &batches[0];
        let mut loss = m.train_step(&g, wt, wl, 0.1); // warm-up
        let t0 = Instant::now();
        for (t, l) in &batches[1..] {
            loss = m.train_step(&g, t, l, 0.1);
        }
        (t0.elapsed().as_secs_f64(), loss)
    });
    let (secs, loss) = out[0];
    (secs / steps as f64, loss)
}

struct Row {
    q: usize,
    schedule: &'static str,
    secs_per_step: f64,
    steps: usize,
    samples: usize,
}

impl Row {
    fn json(&self) -> Json {
        Json::obj(vec![
            ("q", Json::Num(self.q as f64)),
            ("devices", Json::Num((self.q * self.q) as f64)),
            ("schedule", Json::Str(self.schedule.to_string())),
            ("secs_per_step", Json::Num(self.secs_per_step)),
            ("steps", Json::Num(self.steps as f64)),
            ("samples", Json::Num(self.samples as f64)),
        ])
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = "BENCH_step.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out needs a path").clone();
            }
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: step-bench [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let (samples, steps) = if smoke { (3, 2) } else { (5, 4) };
    println!(
        "step-bench: live Optimus train step, overlap on/off, mode={}",
        if smoke { "smoke" } else { "full" }
    );

    // Schedule equivalence first: one step under each schedule must produce
    // bitwise-identical losses (the overlap contract), on both mesh sizes.
    for q in [2usize, 4] {
        let (_, sync_loss) = run_steps(q, false, 1, 7);
        let (_, ovl_loss) = run_steps(q, true, 1, 7);
        assert_eq!(
            sync_loss.to_bits(),
            ovl_loss.to_bits(),
            "overlapped {q}x{q} step diverged from the serial reference"
        );
    }
    println!("bitwise check passed: overlapped == synchronous loss on 2x2 and 4x4");

    let mut rows: Vec<Row> = Vec::new();
    let mut speedups: Vec<(usize, f64)> = Vec::new();
    for q in [2usize, 4] {
        // Interleave the two schedules' samples so machine-load swings hit
        // both equally (this ratio gates CI in smoke mode), min-of-samples.
        let mut mins = [f64::INFINITY; 2];
        for s in 0..samples {
            for (slot, overlap) in [(0usize, false), (1, true)] {
                let (per_step, _) = run_steps(q, overlap, steps, 7 + s as u64);
                mins[slot] = mins[slot].min(per_step);
            }
        }
        let [sync_min, ovl_min] = mins;
        for (schedule, secs) in [("sync", sync_min), ("overlap", ovl_min)] {
            rows.push(Row {
                q,
                schedule,
                secs_per_step: secs,
                steps,
                samples,
            });
        }
        let speedup = sync_min / ovl_min;
        speedups.push((q, speedup));
        println!(
            "{q}x{q}: sync {:.2} ms/step, overlap {:.2} ms/step (speedup {speedup:.2}x)",
            sync_min * 1e3,
            ovl_min * 1e3
        );
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}x{}", r.q, r.q),
                r.schedule.to_string(),
                format!("{:.3}", r.secs_per_step * 1e3),
            ]
        })
        .collect();
    println!("{}", render_table(&["mesh", "schedule", "ms/step"], &table));

    let doc = Json::obj(vec![
        (
            "model",
            Json::Str("optimus train step, batch=4 seq=16 hidden=32 layers=2".to_string()),
        ),
        ("host", bench::host_stamp()),
        ("smoke", Json::Bool(smoke)),
        ("results", Json::Arr(rows.iter().map(Row::json).collect())),
        (
            "overlap_speedup",
            Json::obj(vec![
                ("2x2", Json::Num(speedups[0].1)),
                ("4x4", Json::Num(speedups[1].1)),
            ]),
        ),
    ]);
    std::fs::write(&out, doc.to_string()).expect("write BENCH_step.json");
    println!("wrote {out}");

    if smoke {
        let text = std::fs::read_to_string(&out).expect("re-read artifact");
        let parsed = minjson::parse(&text).expect("BENCH_step.json must re-parse with minjson");
        // Noise bound: overlap must not cost meaningful step time at any
        // mesh size. The tiny smoke model leaves the ratio noisy, so the
        // gate only asks for a genuine >= 1.0 win when the host actually
        // has spare cores for the q*q device threads plus the main thread;
        // on oversubscribed (or undetectable) hosts the win comes solely
        // from removing blocking-receive sleep/wake chains, and the check
        // guards against the overlap machinery grossly regressing (a
        // broken schedule lands well below 0.7), not for a specific win.
        let cores = bench::detected_cores();
        for (q, _) in &speedups {
            let s = parsed
                .get("overlap_speedup")
                .and_then(|o| o.get(&format!("{q}x{q}")))
                .and_then(|v| v.as_f64())
                .expect("speedup field");
            let limit = match cores {
                Some(c) if c > q * q + 1 => 1.0,
                _ => 0.7,
            };
            if s < limit {
                eprintln!("FAIL: overlapped {q}x{q} step is {s:.2}x of sync (limit {limit})");
                std::process::exit(1);
            }
        }
        println!(
            "smoke checks passed (cores detected: {})",
            cores.map_or("no".to_string(), |c| c.to_string())
        );
    }
}
