//! Command-line driver for the workspace: train/evaluate/generate with any
//! of the parallelism schemes on the simulated mesh, with JSON model
//! checkpoints interchangeable between all of them.
//!
//! ```text
//! optimus-cli train    --scheme optimus --q 2 --layers 2 --steps 40 --save model.json
//! optimus-cli eval     --load model.json --q 2
//! optimus-cli generate --load model.json --len 24
//! optimus-cli --dry-run [--q 8 --hidden 64 ...] [--trace out.json]
//! optimus-cli train --scheme optimus --trace out.json
//! optimus-cli train --scheme optimus --metrics m.json
//! optimus-cli train --scheme optimus --no-overlap   # serial SUMMA schedule
//! optimus-cli train --grid 2,2,2                    # Tesseract 2.5D mesh
//! optimus-cli --dry-run --grid 8,8,2 --devices 128
//! optimus-cli crossover                             # 1D vs 2D vs 2.5D table
//! optimus-cli autotune --devices 512 --mem-budget 16 [--report R.json] [--check]
//! optimus-cli calibrate [--bench BENCH_gemm.json]
//! optimus-cli tune-coll [--devices 8] [--reps 24] [--wire bf16] [--save results/coll_tune.json]
//! optimus-cli info
//! ```
//!
//! `--grid p,q,d` (or `--depth d` next to `--q`) selects a `[q, q, d]`
//! Tesseract mesh: each of the `d` depth slices runs `q/d` of the SUMMA
//! panel rounds and the partial products meet in a depth-subgroup epilogue.
//! `--devices N` cross-checks the grid against an intended device count and
//! fails with a readable message instead of a mid-run panic when
//! `p·q·d ≠ N`. `crossover` prints the projected 512–4096-device table
//! where 2.5D overtakes both 1D Megatron and 2D Optimus.
//!
//! `autotune` enumerates every valid hybrid partition of `--devices N` into
//! pipeline stages × data-parallel replicas × `[q, q, d]` tensor meshes
//! (`pp·dp·q²·d = N`), prices each candidate's training step with the α-β +
//! memory models (`perf::autotune`), cuts the ones that exceed
//! `--mem-budget` GiB per device, and prints the Pareto frontier of
//! throughput vs peak memory. `--report out.json` writes the frontier as a
//! metrics-schema report (`regress-check validate` accepts it); `--check`
//! additionally runs the best 8-device hybrid configuration **live** on the
//! thread mesh and verifies the dry-run backend emitted byte-identical
//! CommLog streams and a `tracecheck`-reconciled (< 1e-5) priced timeline.
//!
//! `--dry-run` (usable bare or with `train`) replays one Optimus training
//! step per rank through the trace-only [`mesh::DryRunComm`] backend — no
//! device threads, no data movement — and prices the recorded communication
//! schedule with the α-β cost model on a projected mesh (8 × 8 by default).
//!
//! `--trace out.json` additionally records a phase-scoped timeline and
//! writes it as Chrome `trace_event` JSON (load in Perfetto or
//! `chrome://tracing`; see OBSERVABILITY.md). Under `--dry-run` the
//! timeline is stamped with α-β model time; under a live `train` it is
//! wall-clock, traced over one extra training step after training ends.
//! Either way a per-phase summary table (measured vs modeled time per
//! collective kind) is printed.
//!
//! `--metrics out.json` writes a runtime metrics report (see
//! OBSERVABILITY.md, "Metrics"): under a live `train`, per-rank **measured**
//! peak memory per phase, pool utilization counters, and per-collective
//! wait histograms harvested from the metered training run; under
//! `--dry-run` the memory numbers come from the `perf::memory` analytical
//! model instead — the report's `source` fields label which is which.
//! Unwritable `--trace`/`--metrics` paths are rejected before the run.
//!
//! `calibrate` measures (or reads from a `gemm-bench` artifact) the GFLOP/s
//! the in-tree GEMM engine actually achieves on this host and stores it at
//! `results/calibration.json`. Later `--dry-run` projections pick the file
//! up automatically, so Eq. 4–5 track the measured kernels instead of the
//! paper's GPU profile; `--profile frontera` forces the paper profile back.
//!
//! `tune-coll` does the same for the **collective algorithm registry**: it
//! times every algorithm on each collective's menu across message sizes on
//! the live thread mesh (`--devices`, default 8), keeps a byte-range rule
//! for every cell where a non-default algorithm measures fastest, prints
//! the measured-vs-α-β-modeled winner per cell, gates the table with a
//! tracecheck-reconciled (< 1e-5) 8 × 8 dry-run, and persists it to
//! `results/coll_tune.json` — which every other command auto-loads and
//! installs via `mesh::install_algo_table` at startup. Delete the file to
//! return to the built-in defaults. Every cell is additionally measured on
//! the compressed 16-bit wire (bf16 by default) and reported next to the
//! full-width winner; `--wire bf16` (or `f16`) opts in to *persisting*
//! wire-precision rules for the cells where compression measured faster,
//! which subsequent runs auto-install via `mesh::install_wire_table` —
//! an explicit opt-in, because a compressed wire trades bitwise f32
//! reproducibility for bandwidth (see DESIGN.md §11).
//!
//! The training corpus is the built-in cyclic-pattern language (the same one
//! the tests and examples use), so runs are self-contained and deterministic.

use megatron::{MegatronConfig, MegatronModel};
use mesh::{
    AlgoRule, AlgoTable, Arrangement, CollAlgo, CommOp, Mesh, Mesh2d, Topology, WireDtype,
    WireRule, WireTable,
};
use minjson::Json;
use optimus_core::{OptimusConfig, OptimusModel};
use perf::calibration::CALIBRATION_PATH;
use perf::colltune::COLL_TUNE_PATH;
use perf::{Calibration, CollTune, CostModel, HardwareProfile};
use serial::{ModelConfig, ModelParams, SerialModel};
use std::collections::HashMap;
use std::path::Path;
use tensor::Rng;

const PATTERN_PERIOD: usize = 5;

/// Everything the CLI needs to build a run.
#[derive(Clone, Copy, Debug)]
struct Args {
    scheme: Scheme,
    q: usize,
    /// Depth of the Tesseract mesh: `[q, q, depth]` devices, `depth | q`.
    depth: usize,
    /// Intended total device count (`--devices`), checked against the grid.
    devices: Option<usize>,
    batch: usize,
    seq: usize,
    hidden: usize,
    heads: usize,
    vocab: usize,
    layers: usize,
    steps: usize,
    lr: f32,
    seed: u64,
    len: usize,
    dry_run: bool,
    /// SUMMA panel prefetch (comm/compute overlap); `--no-overlap` clears it.
    overlap: bool,
    profile: ProfileChoice,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Scheme {
    Serial,
    Megatron,
    Optimus,
    Pipeline,
}

/// Which compute rate the projection cost model uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ProfileChoice {
    /// Paper profile, overridden by `results/calibration.json` when present.
    Auto,
    /// Always the paper's Frontera rtx profile, even if calibrated.
    Frontera,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scheme: Scheme::Optimus,
            q: 2,
            depth: 1,
            devices: None,
            batch: 8,
            seq: 16,
            hidden: 32,
            heads: 4,
            vocab: 16,
            layers: 2,
            steps: 40,
            lr: 0.5,
            seed: 7,
            len: 16,
            dry_run: false,
            overlap: true,
            profile: ProfileChoice::Auto,
        }
    }
}

impl Args {
    /// Defaults for a dry-run projection: the paper-scale 8 × 8 mesh, with
    /// the model dimensions scaled to stay divisible by `q = 8`. Explicit
    /// flags still override any of these.
    fn dry_run_defaults() -> Self {
        Args {
            q: 8,
            hidden: 64,
            heads: 8,
            dry_run: true,
            ..Args::default()
        }
    }
}

/// Parses `--key value` pairs (order-free). Returns the remaining error on
/// unknown keys so typos fail loudly. `--dry-run` and `--no-overlap` are
/// valueless.
fn parse_flags(argv: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = argv.iter().peekable();
    while let Some(k) = it.next() {
        let key = k
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{k}'"))?;
        if matches!(key, "dry-run" | "no-overlap" | "check")
            && it.peek().is_none_or(|n| n.starts_with("--"))
        {
            out.insert(key.to_string(), "true".to_string());
            continue;
        }
        let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        out.insert(key.to_string(), v.clone());
    }
    Ok(out)
}

fn apply_flags(mut args: Args, flags: &HashMap<String, String>) -> Result<Args, String> {
    for (k, v) in flags {
        let us = |v: &str| v.parse::<usize>().map_err(|e| format!("--{k}: {e}"));
        match k.as_str() {
            "scheme" => {
                args.scheme = match v.as_str() {
                    "serial" => Scheme::Serial,
                    "megatron" => Scheme::Megatron,
                    "optimus" => Scheme::Optimus,
                    "pipeline" => Scheme::Pipeline,
                    other => return Err(format!("unknown scheme '{other}'")),
                }
            }
            "q" => args.q = us(v)?,
            "depth" => args.depth = us(v)?,
            "devices" => args.devices = Some(us(v)?),
            "batch" => args.batch = us(v)?,
            "seq" => args.seq = us(v)?,
            "hidden" => args.hidden = us(v)?,
            "heads" => args.heads = us(v)?,
            "vocab" => args.vocab = us(v)?,
            "layers" => args.layers = us(v)?,
            "steps" => args.steps = us(v)?,
            "len" => args.len = us(v)?,
            "seed" => args.seed = v.parse().map_err(|e| format!("--seed: {e}"))?,
            "lr" => args.lr = v.parse().map_err(|e| format!("--lr: {e}"))?,
            "dry-run" => args.dry_run = v.parse().map_err(|e| format!("--dry-run: {e}"))?,
            "no-overlap" => {
                let off: bool = v.parse().map_err(|e| format!("--no-overlap: {e}"))?;
                args.overlap = !off;
            }
            "profile" => {
                args.profile = match v.as_str() {
                    "auto" => ProfileChoice::Auto,
                    "frontera" => ProfileChoice::Frontera,
                    other => return Err(format!("unknown profile '{other}' (auto|frontera)")),
                }
            }
            "save" | "load" | "trace" | "bench" | "metrics" => {} // handled by the caller
            "mem-budget" | "report" | "check" => {}               // autotune flags, handled there
            "reps" | "wire" => {}                                 // tune-coll flags, handled there
            "grid" => {} // handled by finalize_mesh (order-independent)
            other => return Err(format!("unknown flag --{other}")),
        }
    }
    Ok(args)
}

/// Applies `--grid p,q,d` and validates the mesh geometry after every flag
/// has landed (flag order must not matter). All failure modes here are user
/// input, so they come back as readable errors, not panics.
fn finalize_mesh(mut args: Args, flags: &HashMap<String, String>) -> Result<Args, String> {
    if let Some(spec) = flags.get("grid") {
        if flags.contains_key("q") || flags.contains_key("depth") {
            return Err("--grid p,q,d already fixes the mesh; drop --q/--depth".to_string());
        }
        let dims: Vec<usize> = spec
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("--grid: '{s}' is not a device count (want p,q or p,q,d)"))
            })
            .collect::<Result<_, _>>()?;
        let (p, q, d) = match dims[..] {
            [p, q] => (p, q, 1),
            [p, q, d] => (p, q, d),
            _ => {
                return Err(format!(
                    "--grid wants 2 or 3 axes (p,q or p,q,d), got '{spec}'"
                ))
            }
        };
        if p != q {
            return Err(format!(
                "--grid {spec}: SUMMA slices must be square (p = q); got {p}x{q}"
            ));
        }
        args.q = q;
        args.depth = d;
    }
    if args.q == 0 || args.depth == 0 {
        return Err("mesh axes must be at least 1".to_string());
    }
    if !args.q.is_multiple_of(args.depth) {
        return Err(format!(
            "2.5D SUMMA needs the depth to divide the mesh side: --grid {q},{q},{d} \
             (try d in {{1, {hint}}})",
            q = args.q,
            d = args.depth,
            hint = args.q
        ));
    }
    if let Some(n) = args.devices {
        let need = args.q * args.q * args.depth;
        if need != n {
            return Err(format!(
                "a {q}x{q}x{d} grid uses {need} devices, but --devices says {n}; \
                 pick a grid with p*q*d = {n}",
                q = args.q,
                d = args.depth,
            ));
        }
    }
    if args.depth > 1 && args.scheme != Scheme::Optimus {
        return Err(format!(
            "--depth {} only applies to --scheme optimus (the {:?} scheme has no depth axis)",
            args.depth, args.scheme
        ));
    }
    Ok(args)
}

fn model_cfg(a: &Args) -> ModelConfig {
    ModelConfig {
        batch: a.batch,
        seq: a.seq,
        hidden: a.hidden,
        heads: a.heads,
        vocab: a.vocab,
        layers: a.layers,
        causal: true,
    }
}

fn pattern_batch(cfg: &ModelConfig, rng: &mut Rng) -> (Vec<usize>, Vec<usize>) {
    let mut tokens = Vec::with_capacity(cfg.tokens());
    let mut labels = Vec::with_capacity(cfg.tokens());
    for _ in 0..cfg.batch {
        let phase = rng.below(PATTERN_PERIOD);
        for t in 0..cfg.seq {
            tokens.push((phase + t) % PATTERN_PERIOD);
            labels.push((phase + t + 1) % PATTERN_PERIOD);
        }
    }
    (tokens, labels)
}

/// Trains under the chosen scheme and returns (losses, canonical params).
fn train(a: &Args) -> (Vec<f32>, ModelParams) {
    let cfg = model_cfg(a);
    let mut rng = Rng::new(a.seed ^ 0xDA7A);
    let batches: Vec<_> = (0..a.steps)
        .map(|_| pattern_batch(&cfg, &mut rng))
        .collect();
    match a.scheme {
        Scheme::Serial => {
            let mut m = SerialModel::new(cfg, a.seed);
            let losses = batches
                .iter()
                .map(|(t, l)| m.train_step(t, l, a.lr))
                .collect();
            (losses, m.params)
        }
        Scheme::Megatron => {
            let p = a.q * a.q; // same device count as the 2D run
            let mcfg = MegatronConfig::new(cfg, p).with_checkpoint();
            let mut out = Mesh::run(p, |ctx| {
                let mut m = MegatronModel::new(mcfg, a.seed, ctx);
                let losses: Vec<f32> = batches
                    .iter()
                    .map(|(t, l)| m.train_step(ctx, t, l, a.lr))
                    .collect();
                (losses, m.gather_params(ctx))
            });
            let (losses, params) = out.remove(0);
            (losses, params.expect("rank 0 gathers"))
        }
        Scheme::Optimus => {
            let ocfg = OptimusConfig {
                q: a.q,
                batch: cfg.batch,
                seq: cfg.seq,
                hidden: cfg.hidden,
                heads: cfg.heads,
                vocab: cfg.vocab,
                layers: cfg.layers,
                causal: cfg.causal,
                checkpoint: true,
                fused_attention: false,
            };
            // [q, q, 1] is byte-identical to the plain 2D mesh, so one code
            // path serves both; with d > 1 each depth slice runs q/d of the
            // SUMMA rounds and the replicas agree bitwise.
            let mut out = mesh::MeshNd::run(&[a.q, a.q, a.depth], |g| {
                let g = g.with_overlap(a.overlap);
                let mut m = OptimusModel::new(&ocfg, a.seed, &g);
                let losses: Vec<f32> = batches
                    .iter()
                    .map(|(t, l)| m.train_step(&g, t, l, a.lr))
                    .collect();
                (losses, m.gather_params(&g))
            });
            let (losses, params) = out.remove(0);
            (losses, params.expect("mesh (0,0) gathers"))
        }
        Scheme::Pipeline => {
            // Largest stage count <= q^2 that divides the layer count.
            let stages = (1..=(a.q * a.q).min(cfg.layers))
                .rev()
                .find(|s| cfg.layers.is_multiple_of(*s))
                .unwrap_or(1);
            let pcfg = pipeline::PipelineConfig::new(cfg, stages, 2.min(cfg.batch));
            let losses = Mesh::run(stages, |ctx| {
                let mut st = pipeline::PipelineStage::new(pcfg, a.seed, ctx);
                batches
                    .iter()
                    .map(|(t, l)| st.train_step(ctx, t, l, a.lr))
                    .collect::<Vec<f32>>()
            })
            .remove(0);
            // Pipeline stages don't implement gather; replay serially (the
            // trajectories are identical) to obtain the parameters.
            let mut m = SerialModel::new(cfg, a.seed);
            for (t, l) in &batches {
                m.train_step(t, l, a.lr);
            }
            (losses, m.params)
        }
    }
}

fn eval(a: &Args, params: ModelParams) -> f32 {
    let cfg = model_cfg(a);
    let mut rng = Rng::new(a.seed ^ 0xE7A1);
    let (tokens, labels) = pattern_batch(&cfg, &mut rng);
    let ocfg = OptimusConfig {
        q: a.q,
        batch: cfg.batch,
        seq: cfg.seq,
        hidden: cfg.hidden,
        heads: cfg.heads,
        vocab: cfg.vocab,
        layers: cfg.layers,
        causal: cfg.causal,
        checkpoint: false,
        fused_attention: true,
    };
    Mesh2d::run(a.q, |g| {
        let m = OptimusModel::from_params(&ocfg, &params, g);
        m.lm_loss(g, &tokens, &labels)
    })[0]
}

fn generate(a: &Args, params: ModelParams) -> Vec<usize> {
    let cfg = model_cfg(a);
    let model = SerialModel {
        cfg,
        params,
        cls: None,
    };
    let mut ctx_tokens: Vec<usize> = Vec::new();
    for b in 0..cfg.batch {
        for t in 0..cfg.seq {
            ctx_tokens.push((b + t) % PATTERN_PERIOD);
        }
    }
    let mut out = Vec::new();
    for _ in 0..a.len {
        let next = model.greedy_next(&ctx_tokens);
        out.push(next[0]);
        for b in 0..cfg.batch {
            let row = &mut ctx_tokens[b * cfg.seq..(b + 1) * cfg.seq];
            row.rotate_left(1);
            row[cfg.seq - 1] = next[b];
        }
    }
    out
}

/// The projection's cost model: the paper's hardware profile, bunched
/// placement (Fig. 8) on the projected `q × q` mesh. Under the default
/// `--profile auto`, a `results/calibration.json` written by
/// `optimus-cli calibrate` overrides the compute rate with the one this
/// host's GEMM engine actually measured (communication terms keep modelling
/// the paper's fabric either way).
fn projection_cost(a: &Args) -> (HardwareProfile, usize, CostModel) {
    let mut profile = HardwareProfile::frontera_rtx5000();
    if a.profile == ProfileChoice::Auto {
        match Calibration::load(CALIBRATION_PATH) {
            Ok(Some(cal)) => {
                println!(
                    "compute rate calibrated to {:.2} GFLOP/s from {CALIBRATION_PATH} \
                     (source: {}; pass --profile frontera for the paper profile)",
                    cal.gflops(),
                    cal.source,
                );
                profile = cal.apply(profile);
            }
            Ok(None) => {}
            Err(e) => eprintln!("warning: ignoring calibration: {e}"),
        }
    }
    let p = a.q * a.q * a.depth;
    let gpn = profile.gpus_per_node.min(p);
    // Bunched tiling is defined on a square mesh; a deep grid falls back to
    // rank-major placement, which keeps each depth subgroup node-local.
    let topology = if a.depth > 1 {
        Topology::flat(p, gpn)
    } else {
        Topology::new(a.q, gpn, Arrangement::Bunched)
    };
    let cost = CostModel::new(profile.clone(), topology);
    (profile, gpn, cost)
}

/// Extracts a [`Calibration`] from a `gemm-bench` artifact: the
/// single-thread engine row with the most MACs (the most load-bearing
/// measurement, `square-512` in a full run). `Ok(None)` if the file is
/// absent so the caller can fall back to measuring in-process.
fn calibration_from_bench(path: &str) -> Result<Option<Calibration>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("read {path}: {e}")),
    };
    let doc = minjson::parse(&text).map_err(|e| format!("parse {path}: {e:?}"))?;
    let results = match doc.get("results")? {
        Json::Arr(rows) => rows,
        other => return Err(format!("expected results array, got {other:?}")),
    };
    let mut best: Option<(usize, Calibration)> = None;
    for row in results {
        if row.get("threads")?.as_usize()? != 1 {
            continue;
        }
        let (m, k, n) = (
            row.get("m")?.as_usize()?,
            row.get("k")?.as_usize()?,
            row.get("n")?.as_usize()?,
        );
        let macs = m * k * n;
        if best.as_ref().is_none_or(|(b, _)| macs > *b) {
            let name = match row.get("name")? {
                Json::Str(s) => s.clone(),
                other => return Err(format!("expected string name, got {other:?}")),
            };
            best = Some((
                macs,
                Calibration {
                    mac_rate: row.get("gflops")?.as_f64()? * 1e9 / 2.0,
                    shape: [m, k, n],
                    threads: 1,
                    source: format!("{path}:{name}"),
                },
            ));
        }
    }
    match best {
        Some((_, cal)) => Ok(Some(cal)),
        None => Err(format!("{path} has no single-thread result rows")),
    }
}

/// Measures the engine in-process at 512³ single-threaded (the same
/// configuration `gemm-bench` uses for its seed-speedup headline).
fn calibration_measured() -> Calibration {
    use tensor::gemm::{gemm_acc, Form};
    const S: usize = 512;
    let a = tensor::Tensor::randn(&[S, S], 1.0, &mut Rng::new(1)).into_vec();
    let b = tensor::Tensor::randn(&[S, S], 1.0, &mut Rng::new(2)).into_vec();
    let mut c = vec![0.0f32; S * S];
    let secs = bench::bench_fn("calibrate", "square-512/t1", 5, || {
        tensor::pool::with_thread_cap(1, || gemm_acc(Form::NN, &mut c, S, S, &a, &b, S));
        c[0]
    });
    Calibration {
        mac_rate: (S * S * S) as f64 / secs,
        shape: [S, S, S],
        threads: 1,
        source: format!("measured in-process ({})", tensor::gemm::kernel_name()),
    }
}

/// The `calibrate` command: derive the measured compute rate (preferring an
/// existing `gemm-bench` artifact, measuring in-process otherwise) and
/// persist it where [`projection_cost`] auto-loads it.
fn calibrate(flags: &HashMap<String, String>) {
    let bench_path = flags
        .get("bench")
        .map(String::as_str)
        .unwrap_or("BENCH_gemm.json");
    let cal = match calibration_from_bench(bench_path) {
        Ok(Some(cal)) => {
            println!("read measured rate from {bench_path}");
            cal
        }
        Ok(None) => {
            println!("{bench_path} not found; measuring 512^3 in-process (~seconds)…");
            calibration_measured()
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let out = flags
        .get("save")
        .map(String::as_str)
        .unwrap_or(CALIBRATION_PATH);
    cal.save(out).expect("write calibration file");
    println!(
        "calibrated: {:.2} GFLOP/s at {}x{}x{} ({} thread{}) — wrote {out}",
        cal.gflops(),
        cal.shape[0],
        cal.shape[1],
        cal.shape[2],
        cal.threads,
        if cal.threads == 1 { "" } else { "s" },
    );
    println!("dry-run projections now use this rate (override with --profile frontera)");
}

/// Writes `traces` as a Chrome `trace_event` JSON file and prints the
/// per-phase summary table, with `cost` supplying the modeled column.
fn emit_trace(path: &str, traces: &[trace::DeviceTrace], cost: &CostModel) {
    let json = trace::chrome_trace(traces);
    std::fs::write(path, json.to_string()).expect("write trace file");
    println!(
        "wrote Chrome trace ({} ranks) to {path} — load in Perfetto or chrome://tracing",
        traces.len()
    );
    let rows = trace::summarize(traces, |m| cost.meta_time(m));
    print!("{}", trace::render_summary(&rows));
}

/// Traces one Optimus training step per rank through [`mesh::DryRunComm`]
/// (no device threads, no data movement) and prices the recorded schedule
/// with the α-β cost model on the projected `q × q` mesh. With `trace_path`,
/// also records the model-time timeline and exports it as Chrome JSON.
fn dry_run_projection(a: &Args, trace_path: Option<&str>, metrics_path: Option<&str>) {
    let cfg = model_cfg(a);
    let ocfg = OptimusConfig {
        q: a.q,
        batch: cfg.batch,
        seq: cfg.seq,
        hidden: cfg.hidden,
        heads: cfg.heads,
        vocab: cfg.vocab,
        layers: cfg.layers,
        causal: cfg.causal,
        checkpoint: true,
        fused_attention: false,
    };
    ocfg.validate();
    let mut rng = Rng::new(a.seed ^ 0xDA7A);
    let (tokens, labels) = pattern_batch(&cfg, &mut rng);
    let (profile, gpn, cost) = projection_cost(a);
    // The loss values are garbage (trace-backend payloads are zeros); only
    // the communication logs and the timeline matter here.
    let step = |g: &mesh::Grid2d<mesh::DryRunComm>| {
        let g = g.with_overlap(a.overlap);
        let mut m = OptimusModel::new(&ocfg, a.seed, &g);
        m.train_step(&g, &tokens, &labels, a.lr)
    };
    let shape = [a.q, a.q, a.depth];
    let (logs, traces) = if trace_path.is_some() {
        let (_, logs, traces) = mesh::MeshNd::dry_run_traced(&shape, cost.ns_pricer(), step);
        (logs, Some(traces))
    } else {
        (mesh::MeshNd::dry_run_with_logs(&shape, step).1, None)
    };

    println!(
        "dry-run projection: {q}x{q}x{d} mesh ({p} devices), one Optimus train step",
        q = a.q,
        d = a.depth,
        p = a.q * a.q * a.depth
    );
    println!(
        "model: batch={} seq={} hidden={} heads={} vocab={} layers={}",
        cfg.batch, cfg.seq, cfg.hidden, cfg.heads, cfg.vocab, cfg.layers
    );
    println!(
        "cost model: profile={}, {placement} placement, {gpn} devices/node",
        profile.name,
        placement = if a.depth > 1 { "rank-major" } else { "bunched" },
    );
    for k in 0..a.depth {
        if a.depth > 1 {
            println!("depth slice {k} — per-device comm time (ms), device (i, j):");
        } else {
            println!("per-device comm time (ms), device (i, j) at row i, column j:");
        }
        for i in 0..a.q {
            let row: Vec<String> = (0..a.q)
                .map(|j| {
                    format!(
                        "{:8.3}",
                        cost.replay(&logs[(i * a.q + j) * a.depth + k]) * 1e3
                    )
                })
                .collect();
            println!("  {}", row.join(" "));
        }
    }
    let ops: usize = logs.iter().map(|l| l.ops.len()).sum();
    let elems: usize = logs.iter().map(|l| l.total_link_elems()).sum();
    println!("totals: {ops} collective participations, {elems} f32 sent on links");
    println!(
        "projected step comm time (slowest device): {:.3} ms",
        cost.replay_max(&logs) * 1e3
    );
    if let (Some(path), Some(traces)) = (trace_path, traces) {
        emit_trace(path, &traces, &cost);
    }
    if let Some(path) = metrics_path {
        // No live devices ran, so there is nothing measured to report; the
        // memory numbers come from the analytical model and the report's
        // `source` field says so.
        let report =
            metrics::report_json("dry-run", &[], vec![("memory_model", memory_model_json(a))]);
        std::fs::write(path, report.to_string()).expect("write metrics file");
        let est = perf::memory::optimus_bytes(
            &perf::memory::MemoryConfig {
                seq: a.seq,
                hidden: a.hidden,
                heads: a.heads,
                vocab: a.vocab,
                layers: a.layers,
                p: a.q * a.q,
            },
            a.batch,
        );
        println!(
            "wrote metrics report (analytical memory model, no live devices) to {path}; \
             modeled per-device total {:.2} MiB",
            est.total / (1u64 << 20) as f64
        );
    }
}

/// The `crossover` command: prints the projected 1D-vs-2D-vs-2.5D table on
/// 512–4096 devices (the Tesseract claim), plus the full d-sweep behind
/// each winning grid.
fn crossover(a: &Args) {
    let mut profile = HardwareProfile::frontera_rtx5000();
    if a.profile == ProfileChoice::Auto {
        if let Ok(Some(cal)) = Calibration::load(CALIBRATION_PATH) {
            profile = cal.apply(profile);
        }
    }
    let pts = perf::projection::crossover_projection(&profile);
    println!(
        "projected training throughput (seq/s), profile={}, weak-scaling sizes:",
        profile.name
    );
    println!(
        "{:>8} {:>8} {:>7} {:>12} {:>14} {:>16} {:>9}",
        "devices", "hidden", "batch", "1D megatron", "2D optimus", "2.5D tesseract", "2.5D/2D"
    );
    for p in &pts {
        println!(
            "{:>8} {:>8} {:>7} {:>12.3} {:>10.3} {q2}x{q2} {:>10.3} {q}x{q}x{d} {:>9.2}",
            p.devices,
            p.hidden,
            p.batch,
            p.megatron_throughput,
            p.optimus2d_throughput,
            p.optimus25d_throughput,
            p.optimus25d_throughput / p.optimus2d_throughput,
            q2 = p.optimus2d_q,
            q = p.best_q,
            d = p.best_d,
        );
    }
    println!("d-sweep (every admissible [q, q, d] grid):");
    for p in &pts {
        let entries: Vec<String> = p
            .depth_sweep
            .iter()
            .map(|e| format!("{}x{}x{} -> {:.3}", e.q, e.q, e.d, e.throughput))
            .collect();
        println!("  {:>5} devices: {}", p.devices, entries.join(", "));
    }
}

fn isqrt_floor(n: usize) -> usize {
    let mut r = (n as f64).sqrt() as usize;
    while (r + 1) * (r + 1) <= n {
        r += 1;
    }
    while r * r > n {
        r -= 1;
    }
    r
}

/// Model dimensions for the autotune sweep. Flags pin any of them; the
/// defaults follow the weak-scaling recipe keyed to the device count (the
/// same sizes the `crossover` table projects: `h = 1024·⌊√N⌋/8`,
/// `b = 48·⌊√N⌋` at `s = 512`), so a bare `autotune --devices 512` prices a
/// paper-scale model rather than the CLI's thread-mesh-sized default.
fn autotune_model(
    a: &Args,
    flags: &HashMap<String, String>,
    devices: usize,
) -> perf::autotune::AutotuneModel {
    let side = isqrt_floor(devices).max(1);
    let pick = |key: &str, pinned: usize, recipe: usize| {
        if flags.contains_key(key) {
            pinned
        } else {
            recipe
        }
    };
    perf::autotune::AutotuneModel {
        batch: pick("batch", a.batch, 48 * side),
        seq: pick("seq", a.seq, 512),
        hidden: pick("hidden", a.hidden, 1024 * (side / 8).max(1)),
        heads: pick("heads", a.heads, 32),
        vocab: pick("vocab", a.vocab, 32_000),
        layers: pick("layers", a.layers, 24),
    }
}

/// The autotune cost profile: the paper's hardware, with the compute rate
/// overridden by `results/calibration.json` under the default
/// `--profile auto` (same policy as the other projections).
fn autotune_profile(a: &Args) -> HardwareProfile {
    let mut profile = HardwareProfile::frontera_rtx5000();
    if a.profile == ProfileChoice::Auto {
        if let Ok(Some(cal)) = Calibration::load(CALIBRATION_PATH) {
            profile = cal.apply(profile);
        }
    }
    profile
}

/// Shapes the sweep result as a metrics-schema report (`optimus-metrics-v1`
/// with `source: "dry-run"` — nothing live ran), so `regress-check
/// validate` accepts it and CI can gate on its contents.
fn autotune_report(
    devices: usize,
    budget_bytes: f64,
    model: &perf::autotune::AutotuneModel,
    r: &perf::autotune::AutotuneResult,
) -> Json {
    let cand = |c: &perf::autotune::CandidateCost| {
        Json::obj(vec![
            ("config", Json::Str(c.label())),
            ("pp", Json::Num(c.pp as f64)),
            ("dp", Json::Num(c.dp as f64)),
            ("q", Json::Num(c.q as f64)),
            ("d", Json::Num(c.d as f64)),
            ("microbatches", Json::Num(c.microbatches as f64)),
            ("step_time_s", Json::Num(c.step_time)),
            ("throughput_seq_s", Json::Num(c.throughput)),
            ("peak_bytes", Json::Num(c.peak_bytes)),
            ("bubble_fraction", Json::Num(c.bubble_fraction())),
        ])
    };
    let autotune = Json::obj(vec![
        ("devices", Json::Num(devices as f64)),
        (
            "mem_budget_bytes",
            if budget_bytes.is_finite() {
                Json::Num(budget_bytes)
            } else {
                Json::Null
            },
        ),
        (
            "model",
            Json::obj(vec![
                ("batch", Json::Num(model.batch as f64)),
                ("seq", Json::Num(model.seq as f64)),
                ("hidden", Json::Num(model.hidden as f64)),
                ("heads", Json::Num(model.heads as f64)),
                ("vocab", Json::Num(model.vocab as f64)),
                ("layers", Json::Num(model.layers as f64)),
            ]),
        ),
        ("enumerated", Json::Num(r.enumerated as f64)),
        ("feasible", Json::Num(r.feasible.len() as f64)),
        ("frontier", Json::Arr(r.frontier.iter().map(cand).collect())),
        (
            "best",
            match r.best() {
                Some(b) => Json::Str(b.label()),
                None => Json::Null,
            },
        ),
    ]);
    metrics::report_json("dry-run", &[], vec![("autotune", autotune)])
}

/// The live cross-check behind `autotune --check`: the best 8-device hybrid
/// configuration for a thread-mesh-sized model runs end to end on **both**
/// backends. The CommLog streams must match byte for byte rank by rank, and
/// the dry-run timeline priced by `CostModel::ns_pricer` must reconcile
/// with the model through `perf::tracecheck` to better than 1e-5 — the same
/// bar the 2.5D projections are held to.
fn autotune_check(profile: &HardwareProfile) -> Result<(), String> {
    const CHECK_DEVICES: usize = 8;
    let cfg = OptimusConfig {
        q: 2,
        batch: 8,
        seq: 16,
        hidden: 32,
        heads: 4,
        vocab: 16,
        layers: 2,
        causal: true,
        checkpoint: true,
        fused_attention: false,
    };
    let model = perf::autotune::AutotuneModel {
        batch: cfg.batch,
        seq: cfg.seq,
        hidden: cfg.hidden,
        heads: cfg.heads,
        vocab: cfg.vocab,
        layers: cfg.layers,
    };
    let r = perf::autotune::autotune(profile, &model, CHECK_DEVICES, f64::INFINITY);
    let best = r
        .best()
        .ok_or("no valid 8-device hybrid configuration to cross-check")?;
    let spec = hybrid::HybridSpec {
        pp: best.pp,
        dp: best.dp,
        grid: [best.q, best.q, best.d],
        microbatches: best.microbatches,
    };
    let mut rng = Rng::new(0xC0DE);
    let n = cfg.batch * cfg.seq;
    let tokens: Vec<usize> = (0..n).map(|_| rng.below(cfg.vocab)).collect();
    let labels: Vec<usize> = (0..n).map(|_| rng.below(cfg.vocab)).collect();

    let (_, live_logs) = Mesh::run_with_logs(CHECK_DEVICES, |ctx| {
        let (mut st, grid) = hybrid::build(ctx, &spec, &cfg, 7);
        st.train_step(&grid, &tokens, &labels, 0.1)
    });
    let (_, dry_logs) = Mesh::dry_run_with_logs(CHECK_DEVICES, |c| {
        let (mut st, grid) = hybrid::build(c, &spec, &cfg, 7);
        st.train_step(&grid, &tokens, &labels, 0.1)
    });
    for (l, d) in live_logs.iter().zip(&dry_logs) {
        if l.ops != d.ops || l.links != d.links {
            return Err(format!(
                "live and dry-run CommLogs diverge at rank {} for {}",
                l.rank,
                spec_label(&spec)
            ));
        }
    }

    // Run the virtual clock 1024× finer than a nanosecond: every term of
    // the α-β model is linear, so scaling α, β and 1/mac_rate together
    // leaves relative gaps untouched while the clock-rounding floor (±0.5
    // tick per event, which alone is ~2.5e-5 of a bare-α op) drops three
    // orders of magnitude below the 1e-5 bar. Stamping and re-pricing use
    // the same scaled model, so the reconciliation is exact by construction
    // up to that rounding.
    const CLOCK_SCALE: f64 = 1024.0;
    let fine = HardwareProfile {
        mac_rate: profile.mac_rate / CLOCK_SCALE,
        alpha: profile.alpha * CLOCK_SCALE,
        beta_intra: profile.beta_intra * CLOCK_SCALE,
        beta_inter: profile.beta_inter * CLOCK_SCALE,
        ..profile.clone()
    };
    let gpn = profile.gpus_per_node.min(CHECK_DEVICES);
    let cost = CostModel::new(fine, Topology::flat(CHECK_DEVICES, gpn));
    let (_, _, traces) = Mesh::dry_run_traced(CHECK_DEVICES, cost.ns_pricer(), |c| {
        let (mut st, grid) = hybrid::build(c, &spec, &cfg, 7);
        st.train_step(&grid, &tokens, &labels, 0.1)
    });
    let totals = perf::tracecheck::op_totals(&cost, &traces);
    let gap = perf::tracecheck::max_rel_gap(&totals);
    if gap.is_nan() || gap >= 1e-5 {
        return Err(format!(
            "tracecheck reconciliation gap {gap:.3e} exceeds 1e-5 for {}",
            spec_label(&spec)
        ));
    }
    println!(
        "live cross-check ({} on {CHECK_DEVICES} devices): CommLogs byte-identical, \
         tracecheck max relative gap {gap:.2e} < 1e-5",
        spec_label(&spec)
    );
    Ok(())
}

fn spec_label(s: &hybrid::HybridSpec) -> String {
    format!(
        "{}x{}x[{},{},{}]x{}",
        s.pp, s.dp, s.grid[0], s.grid[1], s.grid[2], s.microbatches
    )
}

/// Byte-range boundaries for the tuned rules: cell `i` of the sweep grid
/// owns `[lo, hi]` bytes where the split between adjacent measured sizes is
/// their geometric midpoint (sizes are log-spaced, so the midpoint in log
/// space is the natural crossover estimate), the first cell reaches down to
/// zero and the last up to `usize::MAX`.
fn cell_bounds(sizes: &[usize], i: usize) -> (usize, usize) {
    let mid = |a: usize, b: usize| (((a * 4) as f64 * (b * 4) as f64).sqrt()) as usize;
    let lo = if i == 0 {
        0
    } else {
        mid(sizes[i - 1], sizes[i]) + 1
    };
    let hi = if i + 1 == sizes.len() {
        usize::MAX
    } else {
        mid(sizes[i], sizes[i + 1])
    };
    (lo, hi)
}

/// The end-to-end gate behind `tune-coll`: with the tuned table installed
/// process-globally, one Optimus training step dry-runs on the paper-scale
/// 8 × 8 mesh and the priced timeline must reconcile with the cost model
/// through `perf::tracecheck` to better than 1e-5 — proof that the dry-run
/// prices exactly the algorithm the selection layer picks, rule by rule.
fn tune_coll_check(profile: &HardwareProfile) -> Result<(), String> {
    const Q: usize = 8;
    let ocfg = OptimusConfig {
        q: Q,
        batch: 8,
        seq: 16,
        hidden: 64,
        heads: 8,
        vocab: 16,
        layers: 2,
        causal: true,
        checkpoint: true,
        fused_attention: false,
    };
    let mut rng = Rng::new(0xC011);
    let n = ocfg.batch * ocfg.seq;
    let tokens: Vec<usize> = (0..n).map(|_| rng.below(ocfg.vocab)).collect();
    let labels: Vec<usize> = (0..n).map(|_| rng.below(ocfg.vocab)).collect();
    // Same fine-clock trick as `autotune --check`: the α-β model is linear,
    // so scaling every rate term together shrinks the clock-rounding floor
    // three orders of magnitude below the 1e-5 bar without moving any
    // relative gap.
    const CLOCK_SCALE: f64 = 1024.0;
    let fine = HardwareProfile {
        mac_rate: profile.mac_rate / CLOCK_SCALE,
        alpha: profile.alpha * CLOCK_SCALE,
        beta_intra: profile.beta_intra * CLOCK_SCALE,
        beta_inter: profile.beta_inter * CLOCK_SCALE,
        ..profile.clone()
    };
    let p = Q * Q;
    let cost = CostModel::new(fine, Topology::flat(p, profile.gpus_per_node.min(p)));
    let (_, _, traces) = mesh::MeshNd::dry_run_traced(&[Q, Q, 1], cost.ns_pricer(), |g| {
        let mut m = OptimusModel::new(&ocfg, 7, g);
        m.train_step(g, &tokens, &labels, 0.1)
    });
    let totals = perf::tracecheck::op_totals(&cost, &traces);
    let gap = perf::tracecheck::max_rel_gap(&totals);
    if gap.is_nan() || gap >= 1e-5 {
        return Err(format!(
            "tracecheck reconciliation gap {gap:.3e} exceeds 1e-5 on the tuned 8x8 dry-run"
        ));
    }
    println!(
        "tuned-table cross-check (8x8 dry-run, one Optimus train step): \
         tracecheck max relative gap {gap:.2e} < 1e-5"
    );
    Ok(())
}

/// The `tune-coll` command: measures every registered collective algorithm
/// on the live thread mesh across message sizes, derives the selection
/// table of measured winners (one byte-range rule per cell where the winner
/// differs from the built-in default), cross-checks the modeled winner
/// against the measured one per cell, gates the table with a tracecheck'd
/// 8 × 8 dry-run, and persists it where every entry point auto-loads it.
fn tune_coll_cmd(a: &Args, flags: &HashMap<String, String>) -> Result<(), String> {
    let p = a.devices.unwrap_or(8);
    if p < 2 {
        return Err("--devices must be at least 2 to measure collectives".to_string());
    }
    let base_reps: usize = match flags.get("reps") {
        Some(v) => v.parse().map_err(|e| format!("--reps: {e}"))?,
        None => 24,
    };
    // `--wire bf16|f16` opts in to *persisting* wire-precision rules for
    // cells where the compressed wire measures faster than the full-width
    // winner — an explicit opt-in because installed rules trade bitwise
    // reproducibility for bandwidth. Without the flag the compressed column
    // is still measured and reported (at bf16), just never saved.
    let wire_opt: Option<WireDtype> = match flags.get("wire").map(String::as_str) {
        None | Some("off") | Some("f32") => None,
        Some(name) => Some(
            WireDtype::from_name(name)
                .filter(|w| !w.is_f32())
                .ok_or_else(|| format!("--wire wants bf16|f16|off, got '{name}'"))?,
        ),
    };
    let probe = wire_opt.unwrap_or(WireDtype::Bf16);
    let trials = 3;
    let sizes: Vec<usize> = bench::coll::TUNE_ELEMS.to_vec();
    let profile = autotune_profile(a);
    let cost = CostModel::new(
        profile.clone(),
        Topology::flat(p, profile.gpus_per_node.min(p)),
    );
    let ranks: Vec<usize> = (0..p).collect();

    println!(
        "tune-coll: {p}-device live mesh, sizes {:?} f32 elems, reps<= {base_reps}, min of {trials} trials",
        sizes
    );
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut rules: Vec<AlgoRule> = Vec::new();
    let mut wire_rules: Vec<WireRule> = Vec::new();
    let (mut cells, mut agree) = (0usize, 0usize);
    for op in bench::coll::TUNE_OPS {
        for (i, &elems) in sizes.iter().enumerate() {
            if op == CommOp::ReduceScatter && elems % p != 0 {
                continue; // reduce-scatter needs p | payload
            }
            let measure = |algo: CollAlgo, w: WireDtype| {
                bench::coll::measure_coll_wire(
                    op,
                    algo,
                    p,
                    elems,
                    bench::coll::reps_for(base_reps, elems),
                    trials,
                    w,
                )
            };
            let samples: Vec<bench::coll::CollSample> = CollAlgo::menu(op)
                .iter()
                .map(|&algo| measure(algo, WireDtype::F32))
                .collect();
            // Same menu again on the compressed wire: half the bytes move,
            // plus pack/unpack work — whether that nets out faster is
            // exactly what the cell measures.
            let compressed: Vec<bench::coll::CollSample> = CollAlgo::menu(op)
                .iter()
                .map(|&algo| measure(algo, probe))
                .collect();
            let winner = samples
                .iter()
                .min_by(|x, y| x.secs.total_cmp(&y.secs))
                .expect("non-empty menu");
            let cbest = compressed
                .iter()
                .min_by(|x, y| x.secs.total_cmp(&y.secs))
                .expect("non-empty menu");
            let modeled = *CollAlgo::menu(op)
                .iter()
                .min_by(|&&x, &&y| {
                    cost.coll_time(op, x, &ranks, elems)
                        .total_cmp(&cost.coll_time(op, y, &ranks, elems))
                })
                .expect("non-empty menu");
            cells += 1;
            if winner.algo == modeled {
                agree += 1;
            }
            rows.push(vec![
                op.name().to_string(),
                elems.to_string(),
                samples
                    .iter()
                    .map(|s| format!("{} {:.1}us", s.algo.name(), s.secs * 1e6))
                    .collect::<Vec<_>>()
                    .join("  "),
                winner.algo.name().to_string(),
                modeled.name().to_string(),
                format!(
                    "{} {:.1}us ({:.2}x)",
                    cbest.algo.name(),
                    cbest.secs * 1e6,
                    winner.secs / cbest.secs
                ),
            ]);
            let (min_bytes, max_bytes) = cell_bounds(&sizes, i);
            if winner.algo != CollAlgo::default_for(op) {
                rules.push(AlgoRule {
                    op,
                    min_group: 2,
                    max_group: usize::MAX,
                    min_bytes,
                    max_bytes,
                    algo: winner.algo,
                });
            }
            if let Some(w) = wire_opt {
                if cbest.secs < winner.secs {
                    wire_rules.push(WireRule {
                        op,
                        min_group: 2,
                        max_group: usize::MAX,
                        min_bytes,
                        max_bytes,
                        wire: w,
                    });
                }
            }
        }
    }
    println!(
        "{}",
        bench::render_table(
            &[
                "op",
                "elems",
                "measured per algorithm",
                "winner",
                "modeled",
                &format!("{} best", probe.name()),
            ],
            &rows
        )
    );
    println!("α-β model picks the measured winner in {agree}/{cells} cells");
    if rules.is_empty() {
        println!("every measured winner matches the built-in default; writing an empty table");
    } else {
        println!(
            "{} cell(s) beat the default — rules: {}",
            rules.len(),
            rules
                .iter()
                .map(|r| format!(
                    "{} [{}..{}B] -> {}",
                    r.op.name(),
                    r.min_bytes,
                    if r.max_bytes == usize::MAX {
                        "inf".to_string()
                    } else {
                        r.max_bytes.to_string()
                    },
                    r.algo.name()
                ))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    if let Some(w) = wire_opt {
        if wire_rules.is_empty() {
            println!(
                "no cell measured {} faster than the full-width winner; \
                 persisting no wire rules",
                w.name()
            );
        } else {
            println!(
                "{} cell(s) measured faster at {} — wire rules: {}",
                wire_rules.len(),
                w.name(),
                wire_rules
                    .iter()
                    .map(|r| format!(
                        "{} [{}..{}B]",
                        r.op.name(),
                        r.min_bytes,
                        if r.max_bytes == usize::MAX {
                            "inf".to_string()
                        } else {
                            r.max_bytes.to_string()
                        },
                    ))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
    }

    let tune = CollTune {
        source: format!("tune-coll p={p} ({cells} cells)"),
        table: AlgoTable { rules },
        wire: WireTable { rules: wire_rules },
    };
    mesh::install_algo_table(tune.table.clone());
    // Gate with the wire rules installed too: the 8x8 dry-run then prices
    // compressed cells end-to-end, so a mispriced wire dtype fails here
    // instead of after the table ships.
    mesh::install_wire_table(tune.wire.clone());
    tune_coll_check(&profile)?;
    let out = flags
        .get("save")
        .map(String::as_str)
        .unwrap_or(COLL_TUNE_PATH);
    tune.save(out).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote tuned table to {out} — every CLI entry point now auto-loads it");
    Ok(())
}

/// The `autotune` command: sweep, table, optional report and live check.
fn autotune_cmd(a: &Args, flags: &HashMap<String, String>) -> Result<(), String> {
    let devices = a
        .devices
        .ok_or("autotune needs --devices N (the world size to partition)")?;
    if devices == 0 {
        return Err("--devices must be at least 1".to_string());
    }
    let budget_bytes = match flags.get("mem-budget") {
        Some(v) => {
            let gb: f64 = v.parse().map_err(|e| format!("--mem-budget: {e}"))?;
            if gb.is_nan() || gb <= 0.0 {
                return Err(format!("--mem-budget {gb} GiB is not a positive budget"));
            }
            gb * (1u64 << 30) as f64
        }
        None => f64::INFINITY,
    };
    let model = autotune_model(a, flags, devices);
    let profile = autotune_profile(a);
    let t0 = std::time::Instant::now();
    let r = perf::autotune::autotune(&profile, &model, devices, budget_bytes);
    let secs = t0.elapsed().as_secs_f64();

    println!(
        "autotune: {devices} devices, model batch={} seq={} hidden={} heads={} vocab={} layers={}",
        model.batch, model.seq, model.hidden, model.heads, model.vocab, model.layers
    );
    println!(
        "{} valid configurations priced in {:.3} s ({} within budget); profile={}",
        r.enumerated,
        secs,
        r.feasible.len(),
        profile.name
    );
    if r.frontier.is_empty() {
        return Err(format!(
            "no hybrid configuration of {devices} devices fits ({} enumerated, {} within budget); \
             the world must factor as pp*dp*q^2*d with pp | layers, dp | batch and \
             q | gcd(hidden, heads, vocab) — try another --devices or a larger --mem-budget",
            r.enumerated,
            r.feasible.len()
        ));
    }
    println!("Pareto frontier (throughput vs per-device peak memory):");
    println!(
        "{:>22} {:>10} {:>10} {:>10} {:>8}",
        "pp x dp x [grid] x m", "step ms", "seq/s", "peak GiB", "bubble"
    );
    for c in &r.frontier {
        println!(
            "{:>22} {:>10.2} {:>10.1} {:>10.2} {:>8.2}",
            c.label(),
            c.step_time * 1e3,
            c.throughput,
            c.peak_bytes / (1u64 << 30) as f64,
            c.bubble_fraction()
        );
    }
    let best = &r.frontier[0];
    println!(
        "winner: {} — {:.1} seq/s, {:.2} GiB/device peak",
        best.label(),
        best.throughput,
        best.peak_bytes / (1u64 << 30) as f64
    );
    if let Some(path) = flags.get("report") {
        let report = autotune_report(devices, budget_bytes, &model, &r);
        std::fs::write(path, report.to_string()).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote autotune report to {path}");
    }
    if flags.contains_key("check") {
        autotune_check(&profile)?;
    }
    Ok(())
}

/// Runs one extra wall-clock-traced training step (after `train` finishes)
/// under the chosen scheme and exports the timeline; the summary's modeled
/// column uses the same projection cost model as `--dry-run`, so the table
/// is a direct measured-vs-Eq. 4–5 comparison.
fn live_trace_step(a: &Args, path: &str) {
    let cfg = model_cfg(a);
    let mut rng = Rng::new(a.seed ^ 0x7ACE);
    let (tokens, labels) = pattern_batch(&cfg, &mut rng);
    let (_, _, cost) = projection_cost(a);
    let traces = match a.scheme {
        Scheme::Optimus => {
            let ocfg = OptimusConfig {
                q: a.q,
                batch: cfg.batch,
                seq: cfg.seq,
                hidden: cfg.hidden,
                heads: cfg.heads,
                vocab: cfg.vocab,
                layers: cfg.layers,
                causal: cfg.causal,
                checkpoint: true,
                fused_attention: false,
            };
            mesh::MeshNd::run_traced(&[a.q, a.q, a.depth], |g| {
                let g = g.with_overlap(a.overlap);
                let mut m = OptimusModel::new(&ocfg, a.seed, &g);
                m.train_step(&g, &tokens, &labels, a.lr)
            })
            .2
        }
        Scheme::Megatron => {
            let p = a.q * a.q;
            let mcfg = MegatronConfig::new(cfg, p).with_checkpoint();
            Mesh::run_traced(p, |ctx| {
                let mut m = MegatronModel::new(mcfg, a.seed, ctx);
                m.train_step(ctx, &tokens, &labels, a.lr)
            })
            .2
        }
        other => {
            eprintln!("--trace supports --scheme optimus|megatron (got {other:?}); skipping");
            return;
        }
    };
    println!("traced one extra {:?} training step (wall-clock)", a.scheme);
    emit_trace(path, &traces, &cost);
}

/// Verifies an output path is writable *before* the run starts, so a typo'd
/// directory fails in milliseconds with a readable error instead of
/// panicking after minutes of training. When the file does not already
/// exist, the probe is removed again.
fn check_writable(flag: &str, path: &str) -> Result<(), String> {
    let existed = Path::new(path).exists();
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        Ok(_) => {
            if !existed {
                let _ = std::fs::remove_file(path);
            }
            Ok(())
        }
        Err(e) => Err(format!("--{flag} {path} is not writable: {e}")),
    }
}

/// The analytical per-device memory estimate for the current model — the
/// "model" half of the dual memory discipline: dry-run reports carry only
/// this, live reports carry it next to the measured tracker numbers, and
/// the `source` field inside says which is which.
fn memory_model_json(a: &Args) -> Json {
    let mc = perf::memory::MemoryConfig {
        seq: a.seq,
        hidden: a.hidden,
        heads: a.heads,
        vocab: a.vocab,
        layers: a.layers,
        // The Fig. 9 model covers the square mesh; depth replicas hold the
        // same blocks, so per-device memory is unchanged by d.
        p: a.q * a.q,
    };
    let est = perf::memory::optimus_bytes(&mc, a.batch);
    Json::obj(vec![
        ("source", Json::Str("analytical (perf::memory)".into())),
        ("params_bytes", Json::Num(est.params)),
        ("grads_bytes", Json::Num(est.grads)),
        ("checkpoints_bytes", Json::Num(est.checkpoints)),
        ("working_set_bytes", Json::Num(est.working_set)),
        ("total_bytes", Json::Num(est.total)),
    ])
}

/// Writes the metrics report harvested from a live run and prints the human
/// summary table. `devices` must already be drained from the registry.
fn emit_metrics_live(a: &Args, path: &str, devices: &[metrics::DeviceSnapshot]) {
    let report = metrics::report_json(
        "live",
        devices,
        vec![("memory_model", memory_model_json(a))],
    );
    std::fs::write(path, report.to_string()).expect("write metrics file");
    println!(
        "wrote metrics report ({} ranks, measured memory) to {path}",
        devices.len()
    );
    print!("{}", metrics::render_summary(devices));
}

fn infer_dims(a: &Args, params: &ModelParams) -> Args {
    Args {
        vocab: params.embedding.rows(),
        hidden: params.embedding.cols(),
        layers: params.layers.len(),
        ..*a
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // A bare `optimus-cli --dry-run ...` is sugar for `train --dry-run ...`.
    let (cmd, rest) = match argv.split_first() {
        Some((c, _)) if c.starts_with("--") => ("train".to_string(), argv.clone()),
        Some((c, r)) => (c.clone(), r.to_vec()),
        None => {
            eprintln!(
                "usage: optimus-cli [train|eval|generate|calibrate|tune-coll|crossover|autotune|info] --flag value ..."
            );
            std::process::exit(2);
        }
    };
    let flags = match parse_flags(&rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let base = if flags.contains_key("dry-run") {
        Args::dry_run_defaults()
    } else {
        Args::default()
    };
    let args = match apply_flags(base, &flags).and_then(|a| {
        if cmd == "autotune" || cmd == "tune-coll" {
            // autotune and tune-coll size their own worlds: --devices is the
            // world to partition/measure, not a q²·d cross-check.
            Ok(a)
        } else {
            finalize_mesh(a, &flags)
        }
    }) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    // A tuned collective-algorithm table persisted by `tune-coll` applies
    // to every entry point, exactly like the calibrated compute rate —
    // except to `tune-coll` itself, which must measure from the baseline.
    if cmd != "tune-coll" {
        match CollTune::load(COLL_TUNE_PATH) {
            Ok(Some(tune)) => {
                println!(
                    "collective algorithms: {} tuned rule(s) from {COLL_TUNE_PATH} (source: {})",
                    tune.table.rules.len(),
                    tune.source
                );
                mesh::install_algo_table(tune.table);
                if !tune.wire.rules.is_empty() {
                    println!(
                        "wire compression: {} tuned rule(s) installed — collectives they match \
                         travel 16-bit (results are no longer bitwise vs f32; delete \
                         {COLL_TUNE_PATH} to revert)",
                        tune.wire.rules.len()
                    );
                    mesh::install_wire_table(tune.wire);
                }
            }
            Ok(None) => {}
            Err(e) => eprintln!("warning: ignoring collective tune: {e}"),
        }
    }

    // Reject unwritable output paths before any work happens: a run that
    // trains for minutes and then dies writing its report helps nobody.
    for flag in ["trace", "metrics", "report"] {
        if let Some(path) = flags.get(flag) {
            if let Err(e) = check_writable(flag, path) {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    match cmd.as_str() {
        "train" if args.dry_run => dry_run_projection(
            &args,
            flags.get("trace").map(|s| s.as_str()),
            flags.get("metrics").map(|s| s.as_str()),
        ),
        "train" => {
            println!(
                "training ({:?}, {} devices) {} steps on the pattern corpus…",
                args.scheme,
                args.q * args.q * args.depth,
                args.steps
            );
            let metrics_path = flags.get("metrics").filter(|_| {
                if args.scheme == Scheme::Serial {
                    eprintln!("--metrics needs a mesh scheme (serial runs no devices); skipping");
                    return false;
                }
                true
            });
            if metrics_path.is_some() {
                metrics::enable();
            }
            let (losses, params) = train(&args);
            let first = losses.first().copied().unwrap_or(0.0);
            let last = losses.last().copied().unwrap_or(0.0);
            println!("loss {first:.4} -> {last:.4} over {} steps", losses.len());
            if let Some(path) = metrics_path {
                metrics::disable();
                let devices = metrics::drain();
                emit_metrics_live(&args, path, &devices);
            }
            if let Some(path) = flags.get("save") {
                params.save_json(Path::new(path)).expect("write checkpoint");
                println!("saved canonical checkpoint to {path}");
            }
            if let Some(path) = flags.get("trace") {
                live_trace_step(&args, path);
            }
        }
        "eval" => {
            let path = flags.get("load").expect("eval needs --load <path>");
            let params = ModelParams::load_json(Path::new(path)).expect("read checkpoint");
            let args = infer_dims(&args, &params);
            let loss = eval(&args, params);
            println!("eval loss on a fresh pattern batch: {loss:.4}");
        }
        "generate" => {
            let path = flags.get("load").expect("generate needs --load <path>");
            let params = ModelParams::load_json(Path::new(path)).expect("read checkpoint");
            let args = infer_dims(&args, &params);
            let tokens = generate(&args, params);
            println!("greedy continuation (token ids): {tokens:?}");
        }
        "calibrate" => calibrate(&flags),
        "tune-coll" => {
            if let Err(e) = tune_coll_cmd(&args, &flags) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        "crossover" => crossover(&args),
        "autotune" => {
            if let Err(e) = autotune_cmd(&args, &flags) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        "info" => {
            println!("optimus-rs CLI — schemes: serial | megatron | optimus | pipeline");
            println!("2.5D meshes: --grid p,q,d (or --q Q --depth D), cross-checked by --devices");
            println!(
                "hybrid 3D/4D: autotune --devices N [--mem-budget GiB] [--report R.json] [--check]"
            );
            println!("defaults: {:?}", Args::default());
        }
        other => {
            eprintln!("unknown command '{other}'");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn flag_parsing_roundtrip() {
        let argv: Vec<String> = ["--steps", "5", "--lr", "0.1", "--scheme", "serial"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&argv).unwrap();
        let a = apply_flags(Args::default(), &f).unwrap();
        assert_eq!(a.steps, 5);
        assert_eq!(a.lr, 0.1);
        assert_eq!(a.scheme, Scheme::Serial);
    }

    #[test]
    fn no_overlap_is_valueless_and_clears_the_default() {
        let argv: Vec<String> = ["--no-overlap", "--steps", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&argv).unwrap();
        let a = apply_flags(Args::default(), &f).unwrap();
        assert!(!a.overlap);
        assert_eq!(a.steps, 2);
        assert!(Args::default().overlap, "overlap is the default schedule");
    }

    #[test]
    fn grid_flag_sets_the_mesh_and_checks_devices() {
        let f = flags(&[("grid", "4,4,2"), ("devices", "32")]);
        let a = apply_flags(Args::default(), &f).unwrap();
        let a = finalize_mesh(a, &f).unwrap();
        assert_eq!((a.q, a.depth), (4, 2));

        // Two-axis form means a plain 2D mesh.
        let f = flags(&[("grid", "3,3")]);
        let a = finalize_mesh(apply_flags(Args::default(), &f).unwrap(), &f).unwrap();
        assert_eq!((a.q, a.depth), (3, 1));

        // --depth alongside --q works without --grid.
        let f = flags(&[("q", "4"), ("depth", "4"), ("devices", "64")]);
        let a = finalize_mesh(apply_flags(Args::default(), &f).unwrap(), &f).unwrap();
        assert_eq!((a.q, a.depth), (4, 4));
    }

    #[test]
    fn bad_grids_fail_with_readable_errors_not_panics() {
        let run = |pairs: &[(&str, &str)]| {
            let f = flags(pairs);
            apply_flags(Args::default(), &f).and_then(|a| finalize_mesh(a, &f))
        };
        // Device-count mismatch names both numbers.
        let e = run(&[("grid", "4,4,2"), ("devices", "33")]).unwrap_err();
        assert!(e.contains("32") && e.contains("33"), "{e}");
        // Non-square slice.
        assert!(run(&[("grid", "4,2,2")]).unwrap_err().contains("square"));
        // Depth must divide the side.
        let e = run(&[("grid", "4,4,3")]).unwrap_err();
        assert!(e.contains("divide"), "{e}");
        // Malformed axis lists.
        assert!(run(&[("grid", "4")]).is_err());
        assert!(run(&[("grid", "4,4,2,2")]).is_err());
        assert!(run(&[("grid", "4,x,2")]).is_err());
        assert!(run(&[("grid", "4,4,0")]).is_err());
        // --grid and --q together is ambiguous.
        assert!(run(&[("grid", "4,4,2"), ("q", "2")]).is_err());
        // Depth needs the Optimus scheme.
        let e = run(&[("scheme", "megatron"), ("q", "4"), ("depth", "2")]).unwrap_err();
        assert!(e.contains("optimus"), "{e}");
    }

    #[test]
    fn deep_grid_trains_bitwise_like_the_flat_one() {
        // The CLI-level version of the 2.5D acceptance property: a 2x2x2
        // run produces byte-identical losses and parameters to 2x2.
        let base = Args {
            steps: 2,
            batch: 4,
            seq: 8,
            hidden: 16,
            heads: 4,
            vocab: 16,
            layers: 1,
            q: 2,
            ..Args::default()
        };
        let (flat_losses, flat_params) = train(&base);
        let (deep_losses, deep_params) = train(&Args { depth: 2, ..base });
        assert_eq!(flat_losses, deep_losses);
        assert_eq!(
            flat_params.embedding.as_slice(),
            deep_params.embedding.as_slice()
        );
        assert_eq!(
            flat_params.layers[0].w_qkv.as_slice(),
            deep_params.layers[0].w_qkv.as_slice()
        );
    }

    #[test]
    fn unknown_flags_fail() {
        assert!(apply_flags(Args::default(), &flags(&[("bogus", "1")])).is_err());
        let argv = vec!["steps".to_string()];
        assert!(parse_flags(&argv).is_err());
    }

    #[test]
    fn all_schemes_train_and_agree() {
        let base = Args {
            steps: 3,
            batch: 4,
            seq: 8,
            hidden: 16,
            heads: 4,
            vocab: 16,
            layers: 2,
            q: 2,
            ..Args::default()
        };
        let (serial_losses, serial_params) = train(&Args {
            scheme: Scheme::Serial,
            ..base
        });
        for scheme in [Scheme::Megatron, Scheme::Optimus, Scheme::Pipeline] {
            let (losses, params) = train(&Args { scheme, ..base });
            for (a, b) in losses.iter().zip(&serial_losses) {
                assert!((a - b).abs() < 5e-3, "{scheme:?}: {a} vs {b}");
            }
            tensor::assert_close(
                params.embedding.as_slice(),
                serial_params.embedding.as_slice(),
                1e-3,
                1e-2,
            );
        }
    }

    #[test]
    fn calibration_prefers_largest_single_thread_row() {
        let dir = std::env::temp_dir().join("optimus-cli-calibrate-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_gemm.json");
        // Two t=1 rows plus a pooled row that must be ignored; the 512³ row
        // wins even though the pooled one is faster.
        std::fs::write(
            &path,
            r#"{"results": [
                {"name": "square-256", "m": 256, "k": 256, "n": 256, "threads": 1, "secs": 0.001, "gflops": 40.0},
                {"name": "square-512", "m": 512, "k": 512, "n": 512, "threads": 1, "secs": 0.005, "gflops": 50.0},
                {"name": "square-512", "m": 512, "k": 512, "n": 512, "threads": 8, "secs": 0.001, "gflops": 250.0}
            ]}"#,
        )
        .unwrap();
        let cal = calibration_from_bench(path.to_str().unwrap())
            .unwrap()
            .unwrap();
        assert_eq!(cal.shape, [512, 512, 512]);
        assert_eq!(cal.threads, 1);
        assert!((cal.gflops() - 50.0).abs() < 1e-9);
        assert!(cal.source.ends_with("square-512"));
        assert!(calibration_from_bench("/nonexistent/BENCH.json")
            .unwrap()
            .is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn autotune_rejects_impossible_specs_with_readable_errors() {
        // No --devices at all.
        let e = autotune_cmd(&Args::default(), &flags(&[])).unwrap_err();
        assert!(e.contains("--devices"), "{e}");
        // A prime world admits no pp·dp·q²·d factorization compatible with
        // the model's divisibility rules.
        let f = flags(&[("devices", "7")]);
        let a = apply_flags(Args::default(), &f).unwrap();
        let e = autotune_cmd(&a, &f).unwrap_err();
        assert!(e.contains("no hybrid configuration"), "{e}");
        // Nonsense budget.
        let f = flags(&[("devices", "64"), ("mem-budget", "-3")]);
        let a = apply_flags(Args::default(), &f).unwrap();
        let e = autotune_cmd(&a, &f).unwrap_err();
        assert!(e.contains("mem-budget"), "{e}");
        // --check is valueless, like --dry-run.
        let argv: Vec<String> = ["--devices", "8", "--check"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&argv).unwrap();
        assert_eq!(f.get("check").map(String::as_str), Some("true"));
    }

    #[test]
    fn autotune_model_recipe_scales_with_devices_unless_pinned() {
        let a = Args::default();
        let m = autotune_model(&a, &flags(&[]), 512);
        // 512 devices -> side 22 -> the crossover sizes.
        assert_eq!((m.batch, m.hidden, m.seq), (48 * 22, 2048, 512));
        let f = flags(&[("hidden", "128")]);
        let a = apply_flags(a, &f).unwrap();
        let m = autotune_model(&a, &f, 512);
        assert_eq!(m.hidden, 128, "explicit flags pin the recipe");
        assert_eq!(m.batch, 48 * 22, "unpinned dims keep the recipe");
    }

    #[test]
    fn autotune_report_passes_metrics_validation() {
        let model = perf::autotune::AutotuneModel {
            batch: 8,
            seq: 16,
            hidden: 32,
            heads: 4,
            vocab: 16,
            layers: 2,
        };
        let profile = HardwareProfile::frontera_rtx5000();
        let r = perf::autotune::autotune(&profile, &model, 8, f64::INFINITY);
        assert!(!r.frontier.is_empty());
        let report = autotune_report(8, f64::INFINITY, &model, &r);
        metrics::validate_report(&report).expect("schema-valid report");
        let back = minjson::parse(&report.to_string()).expect("roundtrip");
        let frontier = back
            .get("autotune")
            .and_then(|a| a.get("frontier"))
            .expect("frontier present");
        assert!(matches!(frontier, Json::Arr(v) if !v.is_empty()));
    }

    #[test]
    fn autotune_check_reconciles_live_and_dry_backends() {
        // The acceptance-criteria cross-check, run in-process: byte-equal
        // CommLogs and a < 1e-5 tracecheck gap on an 8-device live run.
        autotune_check(&HardwareProfile::frontera_rtx5000()).unwrap();
    }

    #[test]
    fn train_eval_generate_flow() {
        let args = Args {
            steps: 120,
            ..Args::default()
        };
        let (losses, params) = train(&args);
        assert!(*losses.last().unwrap() < 1.0, "must learn the pattern");
        let eval_loss = eval(&args, params.clone());
        assert!(eval_loss < 1.0, "eval loss {eval_loss}");
        let gen = generate(&args, params);
        // Continuation of sequence 0 (phase 0): next tokens follow the cycle.
        for (i, &t) in gen.iter().enumerate() {
            assert_eq!(t, (args.seq + i) % PATTERN_PERIOD, "position {i}");
        }
    }
}
