//! CI gate driver for the telemetry artifacts: validates `--metrics`
//! reports and compares fresh `BENCH_gemm.json` / `BENCH_step.json` runs
//! against their committed baselines.
//!
//! ```text
//! regress-check validate REPORT.json
//! regress-check compare BASELINE.json FRESH.json [--tol FRACTION]
//! ```
//!
//! * `validate` — parse the file with `minjson` and check it against the
//!   `optimus-metrics-v1` report schema (`metrics::validate_report`).
//!   Exit 0 if well-formed, 1 with the reason otherwise.
//! * `compare`  — extract the comparable scalar metrics from both bench
//!   files (`metrics::regress::compare`) and gate each fresh value within
//!   `--tol` relative slack (default `0.5` — wide, sized for shared CI
//!   runners; tighten locally). Improvements never fail; metrics present on
//!   only one side are skipped with a warning, so a smoke run can be gated
//!   against a committed full baseline. Exit 0 on pass, 1 on any violation
//!   or structural mismatch.
//!
//! Both subcommands print what they checked — the gate should never fail
//! silently nor pass invisibly.

use minjson::Json;

fn usage() -> ! {
    eprintln!("usage: regress-check validate REPORT.json");
    eprintln!("       regress-check compare BASELINE.json FRESH.json [--tol FRACTION]");
    std::process::exit(2);
}

fn read_json(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("regress-check: cannot read {path}: {e}");
        std::process::exit(1);
    });
    minjson::parse(&text).unwrap_or_else(|e| {
        eprintln!("regress-check: {path} is not valid JSON: {e}");
        std::process::exit(1);
    })
}

fn cmd_validate(path: &str) {
    let report = read_json(path);
    match metrics::validate_report(&report) {
        Ok(()) => {
            let source = match report.get("source") {
                Ok(Json::Str(s)) => s.clone(),
                _ => "unknown".to_string(),
            };
            let devices = report
                .get("devices")
                .and_then(|d| d.as_arr().map(|a| a.len()))
                .unwrap_or(0);
            println!("ok: {path} is a well-formed {source} metrics report ({devices} devices)");
        }
        Err(e) => {
            eprintln!("FAIL: {path} is not a valid metrics report: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_compare(baseline_path: &str, fresh_path: &str, tol: f64) {
    let baseline = read_json(baseline_path);
    let fresh = read_json(fresh_path);
    let cmp = match metrics::regress::compare(&baseline, &fresh, tol) {
        Ok(cmp) => cmp,
        Err(e) => {
            eprintln!("FAIL: cannot compare {fresh_path} against {baseline_path}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "comparing {fresh_path} against baseline {baseline_path} (tol {:.0}%)",
        tol * 100.0
    );
    print!("{}", cmp.render());
    if cmp.passed() {
        println!(
            "ok: {} metric(s) within tolerance, no regressions",
            cmp.checks.len()
        );
    } else {
        eprintln!(
            "FAIL: {} of {} metric(s) regressed beyond tolerance",
            cmp.violations().len(),
            cmp.checks.len()
        );
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("validate") => {
            let [_, path] = args.as_slice() else { usage() };
            cmd_validate(path);
        }
        Some("compare") => {
            let (paths, mut tol) = (&args[1..], 0.5f64);
            let mut positional: Vec<&String> = Vec::new();
            let mut i = 0;
            while i < paths.len() {
                if paths[i] == "--tol" {
                    i += 1;
                    tol = paths
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| {
                            eprintln!("--tol needs a non-negative fraction, e.g. 0.5");
                            std::process::exit(2);
                        });
                } else {
                    positional.push(&paths[i]);
                }
                i += 1;
            }
            let [baseline, fresh] = positional.as_slice() else {
                usage()
            };
            if tol < 0.0 {
                eprintln!("--tol needs a non-negative fraction, e.g. 0.5");
                std::process::exit(2);
            }
            cmd_compare(baseline, fresh, tol);
        }
        _ => usage(),
    }
}
