//! Reconciles the **measured** per-device peak memory of a live 2×2 Optimus
//! train step (the `metrics` allocation tracker) against the **analytical**
//! per-device estimate of `perf::memory` (the Fig. 9 model).
//!
//! The model is asymptotic: it prices parameters, gradients, checkpoints
//! and one layer's activation working set, but not the transient gradient
//! mirrors the live backward pass holds (every activation briefly coexists
//! with its same-shaped gradient) nor the eager toy runtime's intermediate
//! buffers. Measured peaks therefore land a stable small factor *above*
//! the raw model (~1.4× checkpointed at these shapes). The reconciliation
//! contract is two-sided with a stated slack factor:
//!
//! * `measured ≤ model × SLACK` — the envelope, inflated by the stated
//!   factor, must cover every live device, else `autotune`'s memory budget
//!   would admit OOM configs;
//! * `model ≤ measured × SLACK` — the model must stay within the same
//!   factor of reality, else it is too loose to steer anything.
//!
//! Checked for both activation-handling paths: checkpointed (the paper's
//! assumption, recompute in backward) and non-checkpointed (all layer
//! activations held live). For the non-checkpointed path the envelope adds
//! a full working set per extra layer, since `perf::memory` only prices
//! the checkpointed scheme. The cross-path claim of Sec. 3.1.1 is also
//! observed live: checkpointing strictly lowers every device's peak.
//!
//! One `#[test]` covers both paths: the metrics sink is process-global, so
//! concurrent `enable()`/`drain()` from parallel tests would interleave.

use mesh::Mesh2d;
use optimus_core::{OptimusConfig, OptimusModel};
use perf::memory::{optimus_bytes, MemoryConfig};

/// Stated reconciliation factor: measured and model must agree within 3×
/// either way. The live ratios are ~1.1–1.7× at these shapes; 3× leaves
/// room for kernel-level buffer changes without tracking noise.
const SLACK: f64 = 3.0;

fn config(checkpoint: bool) -> OptimusConfig {
    OptimusConfig {
        q: 2,
        batch: 4,
        seq: 16,
        hidden: 32,
        heads: 4,
        vocab: 16,
        layers: 2,
        causal: true,
        checkpoint,
        fused_attention: false,
    }
}

/// Runs one live train step on a 2×2 mesh with the allocation tracker on
/// and returns each device's tracked peak bytes, in rank order.
fn measured_peaks(cfg: &OptimusConfig) -> Vec<u64> {
    cfg.validate();
    let tokens: Vec<usize> = (0..cfg.batch * cfg.seq).map(|i| i % cfg.vocab).collect();
    let labels: Vec<usize> = (0..cfg.batch * cfg.seq)
        .map(|i| (i + 1) % cfg.vocab)
        .collect();
    metrics::enable();
    Mesh2d::run(cfg.q, |g| {
        let mut m = OptimusModel::new(cfg, 42, g);
        m.train_step(g, &tokens, &labels, 0.1)
    });
    metrics::disable();
    let mut devices = metrics::drain();
    devices.sort_by_key(|d| d.rank);
    assert_eq!(devices.len(), cfg.q * cfg.q, "one snapshot per device");
    devices.iter().map(|d| d.peak_bytes).collect()
}

/// Analytical per-device estimate in bytes for `cfg`, adjusted for the
/// non-checkpointed path (all `layers` activation working sets live at
/// once instead of one `bsh/p` checkpoint panel per layer).
fn analytical_model(cfg: &OptimusConfig) -> f64 {
    let mc = MemoryConfig {
        seq: cfg.seq,
        hidden: cfg.hidden,
        heads: cfg.heads,
        vocab: cfg.vocab,
        layers: cfg.layers,
        p: cfg.q * cfg.q,
    };
    let est = optimus_bytes(&mc, cfg.batch);
    if cfg.checkpoint {
        est.total
    } else {
        est.total + (cfg.layers as f64 - 1.0) * est.working_set - est.checkpoints
    }
}

#[test]
fn measured_peaks_reconcile_with_analytical_model() {
    let ck_peaks = measured_peaks(&config(true));
    let nn_peaks = measured_peaks(&config(false));
    for (label, peaks, model) in [
        ("checkpointed", &ck_peaks, analytical_model(&config(true))),
        (
            "non-checkpointed",
            &nn_peaks,
            analytical_model(&config(false)),
        ),
    ] {
        for (rank, &peak) in peaks.iter().enumerate() {
            assert!(peak > 0, "{label}: rank {rank} tracked no allocations");
            let measured = peak as f64;
            assert!(
                measured <= model * SLACK,
                "{label}: rank {rank} measured peak {measured:.0} B exceeds \
                 analytical envelope {model:.0} B x {SLACK}"
            );
            assert!(
                model <= measured * SLACK,
                "{label}: analytical model {model:.0} B is looser than \
                 {SLACK}x rank {rank}'s measured peak {measured:.0} B"
            );
        }
        eprintln!("{label}: measured peaks {peaks:?} B, analytical model {model:.0} B");
    }
    // The paper's core memory claim, observed live: checkpointing must
    // strictly lower the tracked peak on every device (recompute trades
    // memory for time).
    for (rank, (&ck, &nn)) in ck_peaks.iter().zip(&nn_peaks).enumerate() {
        assert!(
            ck < nn,
            "rank {rank}: checkpointed peak {ck} B not below non-checkpointed peak {nn} B"
        );
    }
}
