//! Ablations of the paper's design choices (Section 3.2.3):
//! * pre-allocated SUMMA workspace vs naive per-panel allocation;
//! * activation checkpointing on vs off;
//! * plain accumulate-then-update vs the fused immediate-update step.

use bench::bench_fn;
use mesh::Mesh2d;
use optimus_core::{OptimusConfig, OptimusModel};
use summa::{distribute, summa_nn, summa_nn_into, Workspace};
use tensor::{Rng, Tensor};

fn bench_workspace_reuse() {
    let q = 2;
    let d = 128;
    let mut rng = Rng::new(0);
    let a = Tensor::randn(&[d, d], 1.0, &mut rng);
    let b = Tensor::randn(&[d, d], 1.0, &mut rng);

    bench_fn("summa_workspace", "naive_alloc", 10, || {
        Mesh2d::run(q, |g| {
            let (al, bl) = (distribute(g, &a), distribute(g, &b));
            // 8 products with fresh panel allocations each.
            let mut acc = 0.0;
            for _ in 0..8 {
                acc += summa_nn(g, &al, &bl).at(0, 0);
            }
            acc
        })
    });
    bench_fn("summa_workspace", "workspace", 10, || {
        Mesh2d::run(q, |g| {
            let (al, bl) = (distribute(g, &a), distribute(g, &b));
            let mut ws = Workspace::new();
            let mut c = Tensor::zeros(&[d / q, d / q]);
            let mut acc = 0.0;
            for _ in 0..8 {
                c.zero_();
                summa_nn_into(g, &al, &bl, &mut c, &mut ws);
                acc += c.at(0, 0);
            }
            acc
        })
    });
}

/// Regression guard for the zero-alloc live backend: after a warm-up
/// product has populated both the SUMMA workspace and the mesh's per-device
/// transport buffer pool, steady-state products must hit neither allocator.
fn assert_steady_state_zero_allocs() {
    let q = 2;
    let d = 64;
    let mut rng = Rng::new(4);
    let a = Tensor::randn(&[d, d], 1.0, &mut rng);
    let b = Tensor::randn(&[d, d], 1.0, &mut rng);
    let fresh = Mesh2d::run(q, |g| {
        let (al, bl) = (distribute(g, &a), distribute(g, &b));
        let mut ws = Workspace::new();
        let mut c = Tensor::zeros(&[d / q, d / q]);
        // Warm-up: sizes the workspace and seeds the transport pool.
        for _ in 0..2 {
            c.zero_();
            summa_nn_into(g, &al, &bl, &mut c, &mut ws);
        }
        let ws_after_warmup = ws.fresh_allocs;
        g.ctx().reset_pool_stats();
        for _ in 0..8 {
            c.zero_();
            summa_nn_into(g, &al, &bl, &mut c, &mut ws);
        }
        (ws.fresh_allocs - ws_after_warmup, g.ctx().fresh_allocs())
    });
    for (rank, (ws_growth, pool_misses)) in fresh.iter().enumerate() {
        assert_eq!(*ws_growth, 0, "rank {rank}: workspace grew in steady state");
        assert_eq!(
            *pool_misses, 0,
            "rank {rank}: transport pool missed in steady state"
        );
    }
    println!(
        "steady_state_allocs: workspace=0 pool=0 across {} devices",
        q * q
    );
}

fn train_cfg(checkpoint: bool) -> OptimusConfig {
    OptimusConfig {
        q: 2,
        batch: 4,
        seq: 32,
        hidden: 64,
        heads: 4,
        vocab: 128,
        layers: 4,
        causal: false,
        checkpoint,
        fused_attention: false,
    }
}

fn bench_checkpointing() {
    let cfg = train_cfg(false);
    let mut rng = Rng::new(1);
    let tokens: Vec<usize> = (0..cfg.batch * cfg.seq)
        .map(|_| rng.below(cfg.vocab))
        .collect();
    let labels: Vec<usize> = (0..cfg.batch * cfg.seq)
        .map(|_| rng.below(cfg.vocab))
        .collect();

    for (name, ck) in [("off", false), ("on", true)] {
        let cfg = train_cfg(ck);
        bench_fn("checkpointing", name, 10, || {
            Mesh2d::run(cfg.q, |g| {
                let mut m = OptimusModel::new(&cfg, 3, g);
                m.train_step(g, &tokens, &labels, 0.01)
            })
        });
    }
}

fn bench_fused_update() {
    let cfg = train_cfg(true);
    let mut rng = Rng::new(2);
    let tokens: Vec<usize> = (0..cfg.batch * cfg.seq)
        .map(|_| rng.below(cfg.vocab))
        .collect();
    let labels: Vec<usize> = (0..cfg.batch * cfg.seq)
        .map(|_| rng.below(cfg.vocab))
        .collect();

    bench_fn("update_strategy", "accumulate_then_update", 10, || {
        Mesh2d::run(cfg.q, |g| {
            let mut m = OptimusModel::new(&cfg, 3, g);
            m.train_step(g, &tokens, &labels, 0.01)
        })
    });
    bench_fn("update_strategy", "fused_immediate_update", 10, || {
        Mesh2d::run(cfg.q, |g| {
            let mut m = OptimusModel::new(&cfg, 3, g);
            m.train_step_fused(g, &tokens, &labels, 0.01)
        })
    });
}

fn bench_fused_attention() {
    // Paper Section 6: recompute attention scores instead of caching the
    // [b, n, s, s] tensor — time cost of the recompute vs memory saved.
    let mut cfg = train_cfg(false);
    cfg.seq = 64;
    let mut rng = Rng::new(3);
    let tokens: Vec<usize> = (0..cfg.batch * cfg.seq)
        .map(|_| rng.below(cfg.vocab))
        .collect();
    let labels: Vec<usize> = (0..cfg.batch * cfg.seq)
        .map(|_| rng.below(cfg.vocab))
        .collect();

    for (name, fused) in [("cached_scores", false), ("recomputed_scores", true)] {
        let cfg = OptimusConfig {
            fused_attention: fused,
            ..cfg
        };
        bench_fn("fused_attention", name, 10, || {
            Mesh2d::run(cfg.q, |g| {
                let mut m = OptimusModel::new(&cfg, 3, g);
                m.train_step(g, &tokens, &labels, 0.01)
            })
        });
    }
}

fn main() {
    assert_steady_state_zero_allocs();
    bench_workspace_reuse();
    bench_checkpointing();
    bench_fused_update();
    bench_fused_attention();
}
