//! Ablations of the paper's design choices (Section 3.2.3):
//! * pre-allocated SUMMA workspace vs naive per-panel allocation;
//! * activation checkpointing on vs off;
//! * plain accumulate-then-update vs the fused immediate-update step.

use criterion::{criterion_group, criterion_main, Criterion};
use mesh::Mesh2d;
use optimus_core::{OptimusConfig, OptimusModel};
use summa::{distribute, summa_nn, summa_nn_into, Workspace};
use tensor::{Rng, Tensor};

fn bench_workspace_reuse(c: &mut Criterion) {
    let q = 2;
    let d = 128;
    let mut rng = Rng::new(0);
    let a = Tensor::randn(&[d, d], 1.0, &mut rng);
    let b = Tensor::randn(&[d, d], 1.0, &mut rng);

    let mut group = c.benchmark_group("summa_workspace");
    group.sample_size(10);
    group.bench_function("naive_alloc", |bch| {
        bch.iter(|| {
            Mesh2d::run(q, |g| {
                let (al, bl) = (distribute(g, &a), distribute(g, &b));
                // 8 products with fresh panel allocations each.
                let mut acc = 0.0;
                for _ in 0..8 {
                    acc += summa_nn(g, &al, &bl).at(0, 0);
                }
                acc
            })
        });
    });
    group.bench_function("workspace", |bch| {
        bch.iter(|| {
            Mesh2d::run(q, |g| {
                let (al, bl) = (distribute(g, &a), distribute(g, &b));
                let mut ws = Workspace::new();
                let mut c = Tensor::zeros(&[d / q, d / q]);
                let mut acc = 0.0;
                for _ in 0..8 {
                    c.zero_();
                    summa_nn_into(g, &al, &bl, &mut c, &mut ws);
                    acc += c.at(0, 0);
                }
                acc
            })
        });
    });
    group.finish();
}

fn train_cfg(checkpoint: bool) -> OptimusConfig {
    OptimusConfig {
        q: 2,
        batch: 4,
        seq: 32,
        hidden: 64,
        heads: 4,
        vocab: 128,
        layers: 4,
        causal: false,
        checkpoint,
        fused_attention: false,
    }
}

fn bench_checkpointing(c: &mut Criterion) {
    let cfg = train_cfg(false);
    let mut rng = Rng::new(1);
    let tokens: Vec<usize> = (0..cfg.batch * cfg.seq).map(|_| rng.below(cfg.vocab)).collect();
    let labels: Vec<usize> = (0..cfg.batch * cfg.seq).map(|_| rng.below(cfg.vocab)).collect();

    let mut group = c.benchmark_group("checkpointing");
    group.sample_size(10);
    for (name, ck) in [("off", false), ("on", true)] {
        let cfg = train_cfg(ck);
        group.bench_function(name, |b| {
            b.iter(|| {
                Mesh2d::run(cfg.q, |g| {
                    let mut m = OptimusModel::new(&cfg, 3, g);
                    m.train_step(g, &tokens, &labels, 0.01)
                })
            });
        });
    }
    group.finish();
}

fn bench_fused_update(c: &mut Criterion) {
    let cfg = train_cfg(true);
    let mut rng = Rng::new(2);
    let tokens: Vec<usize> = (0..cfg.batch * cfg.seq).map(|_| rng.below(cfg.vocab)).collect();
    let labels: Vec<usize> = (0..cfg.batch * cfg.seq).map(|_| rng.below(cfg.vocab)).collect();

    let mut group = c.benchmark_group("update_strategy");
    group.sample_size(10);
    group.bench_function("accumulate_then_update", |b| {
        b.iter(|| {
            Mesh2d::run(cfg.q, |g| {
                let mut m = OptimusModel::new(&cfg, 3, g);
                m.train_step(g, &tokens, &labels, 0.01)
            })
        });
    });
    group.bench_function("fused_immediate_update", |b| {
        b.iter(|| {
            Mesh2d::run(cfg.q, |g| {
                let mut m = OptimusModel::new(&cfg, 3, g);
                m.train_step_fused(g, &tokens, &labels, 0.01)
            })
        });
    });
    group.finish();
}

fn bench_fused_attention(c: &mut Criterion) {
    // Paper Section 6: recompute attention scores instead of caching the
    // [b, n, s, s] tensor — time cost of the recompute vs memory saved.
    let mut cfg = train_cfg(false);
    cfg.seq = 64;
    let mut rng = Rng::new(3);
    let tokens: Vec<usize> = (0..cfg.batch * cfg.seq).map(|_| rng.below(cfg.vocab)).collect();
    let labels: Vec<usize> = (0..cfg.batch * cfg.seq).map(|_| rng.below(cfg.vocab)).collect();

    let mut group = c.benchmark_group("fused_attention");
    group.sample_size(10);
    for (name, fused) in [("cached_scores", false), ("recomputed_scores", true)] {
        let cfg = OptimusConfig { fused_attention: fused, ..cfg };
        group.bench_function(name, |b| {
            b.iter(|| {
                Mesh2d::run(cfg.q, |g| {
                    let mut m = OptimusModel::new(&cfg, 3, g);
                    m.train_step(g, &tokens, &labels, 0.01)
                })
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_workspace_reuse,
    bench_checkpointing,
    bench_fused_update,
    bench_fused_attention
);
criterion_main!(benches);
