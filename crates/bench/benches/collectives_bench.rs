//! Collective microbenchmarks on the thread mesh: tree broadcast/reduce
//! (Eq. 4's algorithm) vs ring all-reduce (Eq. 5's), across group sizes and
//! payloads.

use bench::bench_fn;
use mesh::{Group, Mesh};

fn bench_broadcast() {
    for p in [4usize, 9, 16] {
        for elems in [1024usize, 65_536] {
            bench_fn("broadcast", &format!("p{p}/{elems}"), 10, || {
                Mesh::run(p, |ctx| {
                    let g = Group::world(p);
                    let mut data = if ctx.rank() == 0 {
                        vec![1.0f32; elems]
                    } else {
                        Vec::new()
                    };
                    ctx.broadcast(&g, 0, &mut data);
                    data.len()
                })
            });
        }
    }
}

fn bench_all_reduce() {
    for p in [4usize, 9, 16] {
        for elems in [1024usize, 65_536] {
            bench_fn("all_reduce", &format!("p{p}/{elems}"), 10, || {
                Mesh::run(p, |ctx| {
                    let g = Group::world(p);
                    let mut data = vec![ctx.rank() as f32; elems];
                    ctx.all_reduce(&g, &mut data);
                    data[0]
                })
            });
        }
    }
}

fn bench_reduce_vs_all_reduce() {
    // The paper's Sec. 2.5 observation: reduce is a sub-task of all-reduce
    // yet the ring all-reduce moves less per device at large p.
    let p = 16;
    let elems = 65_536;
    bench_fn("reduce_vs_all_reduce_p16", "reduce", 10, || {
        Mesh::run(p, |ctx| {
            let g = Group::world(p);
            let mut data = vec![1.0f32; elems];
            ctx.reduce(&g, 0, &mut data);
        })
    });
    bench_fn("reduce_vs_all_reduce_p16", "all_reduce", 10, || {
        Mesh::run(p, |ctx| {
            let g = Group::world(p);
            let mut data = vec![1.0f32; elems];
            ctx.all_reduce(&g, &mut data);
        })
    });
}

fn main() {
    bench_broadcast();
    bench_all_reduce();
    bench_reduce_vs_all_reduce();
}
