//! Collective microbenchmarks on the thread mesh: tree broadcast/reduce
//! (Eq. 4's algorithm) vs ring all-reduce (Eq. 5's), across group sizes and
//! payloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mesh::{Group, Mesh};

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast");
    group.sample_size(10);
    for p in [4usize, 9, 16] {
        for elems in [1024usize, 65_536] {
            group.throughput(Throughput::Bytes((elems * 4) as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("p{p}"), elems),
                &elems,
                |b, &elems| {
                    b.iter(|| {
                        Mesh::run(p, |ctx| {
                            let g = Group::world(p);
                            let mut data = if ctx.rank() == 0 {
                                vec![1.0f32; elems]
                            } else {
                                Vec::new()
                            };
                            ctx.broadcast(&g, 0, &mut data);
                            data.len()
                        })
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_all_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_reduce");
    group.sample_size(10);
    for p in [4usize, 9, 16] {
        for elems in [1024usize, 65_536] {
            group.throughput(Throughput::Bytes((elems * 4) as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("p{p}"), elems),
                &elems,
                |b, &elems| {
                    b.iter(|| {
                        Mesh::run(p, |ctx| {
                            let g = Group::world(p);
                            let mut data = vec![ctx.rank() as f32; elems];
                            ctx.all_reduce(&g, &mut data);
                            data[0]
                        })
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_reduce_vs_all_reduce(c: &mut Criterion) {
    // The paper's Sec. 2.5 observation: reduce is a sub-task of all-reduce
    // yet the ring all-reduce moves less per device at large p.
    let mut group = c.benchmark_group("reduce_vs_all_reduce_p16");
    group.sample_size(10);
    let p = 16;
    let elems = 65_536;
    group.bench_function("reduce", |b| {
        b.iter(|| {
            Mesh::run(p, |ctx| {
                let g = Group::world(p);
                let mut data = vec![1.0f32; elems];
                ctx.reduce(&g, 0, &mut data);
            })
        });
    });
    group.bench_function("all_reduce", |b| {
        b.iter(|| {
            Mesh::run(p, |ctx| {
                let g = Group::world(p);
                let mut data = vec![1.0f32; elems];
                ctx.all_reduce(&g, &mut data);
            })
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_broadcast,
    bench_all_reduce,
    bench_reduce_vs_all_reduce
);
criterion_main!(benches);
