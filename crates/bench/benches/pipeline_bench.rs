//! Pipeline-parallel baseline benchmarks: wall time of a training step
//! across stage/microbatch configurations on the thread mesh, showing the
//! GPipe bubble shrinking as microbatches increase.

use bench::bench_fn;
use mesh::Mesh;
use pipeline::{PipelineConfig, PipelineStage};
use serial::ModelConfig;
use tensor::Rng;

fn main() {
    let model = ModelConfig {
        batch: 8,
        seq: 16,
        hidden: 32,
        heads: 4,
        vocab: 64,
        layers: 4,
        causal: false,
    };
    let mut rng = Rng::new(0);
    let tokens: Vec<usize> = (0..model.tokens())
        .map(|_| rng.below(model.vocab))
        .collect();
    let labels: Vec<usize> = (0..model.tokens())
        .map(|_| rng.below(model.vocab))
        .collect();

    for (stages, micro) in [(2usize, 1usize), (2, 4), (4, 1), (4, 8)] {
        let cfg = PipelineConfig::new(model, stages, micro);
        bench_fn(
            "pipeline_train_step",
            &format!("s{stages}/m{micro}"),
            10,
            || {
                Mesh::run(stages, |ctx| {
                    let mut st = PipelineStage::new(cfg, 3, ctx);
                    st.train_step(ctx, &tokens, &labels, 0.01)
                })
            },
        );
    }
}
