//! Pipeline-parallel baseline benchmarks: wall time of a training step
//! across stage/microbatch configurations on the thread mesh, showing the
//! GPipe bubble shrinking as microbatches increase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mesh::Mesh;
use pipeline::{PipelineConfig, PipelineStage};
use serial::ModelConfig;
use tensor::Rng;

fn bench_pipeline(c: &mut Criterion) {
    let model = ModelConfig {
        batch: 8,
        seq: 16,
        hidden: 32,
        heads: 4,
        vocab: 64,
        layers: 4,
        causal: false,
    };
    let mut rng = Rng::new(0);
    let tokens: Vec<usize> = (0..model.tokens()).map(|_| rng.below(model.vocab)).collect();
    let labels: Vec<usize> = (0..model.tokens()).map(|_| rng.below(model.vocab)).collect();

    let mut group = c.benchmark_group("pipeline_train_step");
    group.sample_size(10);
    for (stages, micro) in [(2usize, 1usize), (2, 4), (4, 1), (4, 8)] {
        let cfg = PipelineConfig::new(model, stages, micro);
        group.bench_with_input(
            BenchmarkId::new(format!("s{stages}"), micro),
            &micro,
            |b, _| {
                b.iter(|| {
                    Mesh::run(stages, |ctx| {
                        let mut st = PipelineStage::new(cfg, 3, ctx);
                        st.train_step(ctx, &tokens, &labels, 0.01)
                    })
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
