//! SUMMA distributed matmul vs a single-device matmul of the same global
//! problem, on real thread meshes (supports Table 1's computation parity
//! and measures the simulation's communication overhead).

use bench::bench_fn;
use mesh::Mesh2d;
use summa::{cannon_nn, distribute, summa_nn, summa_nt, summa_tn};
use tensor::{matmul_nn, Rng, Tensor};

fn bench_summa_vs_local() {
    for &(m, k, n) in &[(96usize, 96usize, 96usize), (192, 192, 192)] {
        let mut rng = Rng::new(0);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        bench_fn("summa_nn_vs_local", &format!("local/{m}"), 10, || {
            matmul_nn(&a, &b)
        });
        for q in [2usize, 3] {
            bench_fn("summa_nn_vs_local", &format!("summa_q{q}/{m}"), 10, || {
                Mesh2d::run(q, |g| summa_nn(g, &distribute(g, &a), &distribute(g, &b)))
            });
        }
    }
}

fn bench_product_forms() {
    // The three closed-set product forms should cost about the same — the
    // symmetry behind the paper's "backward = 3x forward" accounting.
    let q = 2;
    let d = 128;
    let mut rng = Rng::new(1);
    let a = Tensor::randn(&[d, d], 1.0, &mut rng);
    let b = Tensor::randn(&[d, d], 1.0, &mut rng);
    bench_fn("summa_product_forms", "nn", 10, || {
        Mesh2d::run(q, |g| summa_nn(g, &distribute(g, &a), &distribute(g, &b)))
    });
    bench_fn("summa_product_forms", "nt", 10, || {
        Mesh2d::run(q, |g| summa_nt(g, &distribute(g, &a), &distribute(g, &b)))
    });
    bench_fn("summa_product_forms", "tn", 10, || {
        Mesh2d::run(q, |g| summa_tn(g, &distribute(g, &a), &distribute(g, &b)))
    });
}

fn bench_summa_vs_cannon() {
    // The two classic 2D algorithms the paper cites: broadcast-based SUMMA
    // vs shift-based Cannon, identical math, different communication shape.
    for q in [2usize, 3] {
        let d = 32 * q;
        let mut rng = Rng::new(2);
        let a = Tensor::randn(&[d, d], 1.0, &mut rng);
        let b = Tensor::randn(&[d, d], 1.0, &mut rng);
        bench_fn("summa_vs_cannon", &format!("summa_q{q}"), 10, || {
            Mesh2d::run(q, |g| summa_nn(g, &distribute(g, &a), &distribute(g, &b)))
        });
        bench_fn("summa_vs_cannon", &format!("cannon_q{q}"), 10, || {
            Mesh2d::run(q, |g| cannon_nn(g, &distribute(g, &a), &distribute(g, &b)))
        });
    }
}

fn main() {
    bench_summa_vs_local();
    bench_product_forms();
    bench_summa_vs_cannon();
}
