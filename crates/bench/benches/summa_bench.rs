//! SUMMA distributed matmul vs a single-device matmul of the same global
//! problem, on real thread meshes (supports Table 1's computation parity
//! and measures the simulation's communication overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mesh::Mesh2d;
use summa::{cannon_nn, distribute, summa_nn, summa_nt, summa_tn};
use tensor::{matmul_nn, Rng, Tensor};

fn bench_summa_vs_local(c: &mut Criterion) {
    let mut group = c.benchmark_group("summa_nn_vs_local");
    group.sample_size(10);
    for &(m, k, n) in &[(96usize, 96usize, 96usize), (192, 192, 192)] {
        let mut rng = Rng::new(0);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("local", m), &(m, k, n), |bch, _| {
            bch.iter(|| matmul_nn(&a, &b));
        });
        for q in [2usize, 3] {
            group.bench_with_input(
                BenchmarkId::new(format!("summa_q{q}"), m),
                &(m, k, n),
                |bch, _| {
                    bch.iter(|| {
                        Mesh2d::run(q, |g| {
                            summa_nn(g, &distribute(g, &a), &distribute(g, &b))
                        })
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_product_forms(c: &mut Criterion) {
    // The three closed-set product forms should cost about the same — the
    // symmetry behind the paper's "backward = 3x forward" accounting.
    let mut group = c.benchmark_group("summa_product_forms");
    group.sample_size(10);
    let q = 2;
    let d = 128;
    let mut rng = Rng::new(1);
    let a = Tensor::randn(&[d, d], 1.0, &mut rng);
    let b = Tensor::randn(&[d, d], 1.0, &mut rng);
    group.bench_function("nn", |bch| {
        bch.iter(|| Mesh2d::run(q, |g| summa_nn(g, &distribute(g, &a), &distribute(g, &b))));
    });
    group.bench_function("nt", |bch| {
        bch.iter(|| Mesh2d::run(q, |g| summa_nt(g, &distribute(g, &a), &distribute(g, &b))));
    });
    group.bench_function("tn", |bch| {
        bch.iter(|| Mesh2d::run(q, |g| summa_tn(g, &distribute(g, &a), &distribute(g, &b))));
    });
    group.finish();
}

fn bench_summa_vs_cannon(c: &mut Criterion) {
    // The two classic 2D algorithms the paper cites: broadcast-based SUMMA
    // vs shift-based Cannon, identical math, different communication shape.
    let mut group = c.benchmark_group("summa_vs_cannon");
    group.sample_size(10);
    for q in [2usize, 3] {
        let d = 32 * q;
        let mut rng = Rng::new(2);
        let a = Tensor::randn(&[d, d], 1.0, &mut rng);
        let b = Tensor::randn(&[d, d], 1.0, &mut rng);
        group.bench_function(format!("summa_q{q}"), |bch| {
            bch.iter(|| Mesh2d::run(q, |g| summa_nn(g, &distribute(g, &a), &distribute(g, &b))));
        });
        group.bench_function(format!("cannon_q{q}"), |bch| {
            bch.iter(|| Mesh2d::run(q, |g| cannon_nn(g, &distribute(g, &a), &distribute(g, &b))));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_summa_vs_local,
    bench_product_forms,
    bench_summa_vs_cannon
);
criterion_main!(benches);
