//! Transformer-layer and full-step benchmarks: serial reference vs the 1D
//! (Megatron) and 2D (Optimus) schemes on real thread meshes at equal
//! global problem size (the executed analogue of Tables 2–3).

use bench::bench_fn;
use megatron::{layer1d_forward, Layer1dParams, MegatronConfig, MegatronModel};
use mesh::{Group, Mesh, Mesh2d};
use optimus_core::{layer2d_forward, Layer2dParams, OptimusConfig, OptimusModel};
use serial::{layer_forward, LayerParams, ModelConfig, SerialModel};
use tensor::{Rng, Tensor};

fn model_cfg() -> ModelConfig {
    ModelConfig {
        batch: 4,
        seq: 32,
        hidden: 64,
        heads: 4,
        vocab: 128,
        layers: 2,
        causal: false,
    }
}

fn optimus_cfg(cfg: &ModelConfig) -> OptimusConfig {
    OptimusConfig {
        q: 2,
        batch: cfg.batch,
        seq: cfg.seq,
        hidden: cfg.hidden,
        heads: cfg.heads,
        vocab: cfg.vocab,
        layers: cfg.layers,
        causal: false,
        checkpoint: false,
        fused_attention: false,
    }
}

fn bench_layer_forward() {
    let cfg = model_cfg();
    let full = LayerParams::init(0, 0, cfg.hidden);
    let mut rng = Rng::new(0);
    let x = Tensor::randn(&[cfg.tokens(), cfg.hidden], 1.0, &mut rng);

    bench_fn("layer_forward", "serial", 10, || {
        layer_forward(&cfg, &full, &x)
    });
    let mcfg = MegatronConfig::new(cfg, 4);
    bench_fn("layer_forward", "megatron_p4", 10, || {
        Mesh::run(4, |ctx| {
            let world = Group::world(4);
            let p = Layer1dParams::from_full(&full, cfg.hidden, 4, ctx.rank());
            layer1d_forward(ctx, &world, &mcfg, &p, &x).0
        })
    });
    let ocfg = optimus_cfg(&cfg);
    bench_fn("layer_forward", "optimus_q2", 10, || {
        Mesh2d::run(2, |g| {
            let p = Layer2dParams::from_full(g, &full);
            layer2d_forward(g, &ocfg, &p, &summa::distribute(g, &x)).0
        })
    });
}

fn bench_train_step() {
    let cfg = model_cfg();
    let mut rng = Rng::new(1);
    let tokens: Vec<usize> = (0..cfg.tokens()).map(|_| rng.below(cfg.vocab)).collect();
    let labels: Vec<usize> = (0..cfg.tokens()).map(|_| rng.below(cfg.vocab)).collect();

    let mut m = SerialModel::new(cfg, 3);
    bench_fn("train_step", "serial", 10, || {
        m.train_step(&tokens, &labels, 0.01)
    });
    let mcfg = MegatronConfig::new(cfg, 4);
    bench_fn("train_step", "megatron_p4", 10, || {
        Mesh::run(4, |ctx| {
            let mut m = MegatronModel::new(mcfg, 3, ctx);
            m.train_step(ctx, &tokens, &labels, 0.01)
        })
    });
    let ocfg = optimus_cfg(&cfg);
    bench_fn("train_step", "optimus_q2", 10, || {
        Mesh2d::run(2, |g| {
            let mut m = OptimusModel::new(&ocfg, 3, g);
            m.train_step(g, &tokens, &labels, 0.01)
        })
    });
}

fn main() {
    bench_layer_forward();
    bench_train_step();
}
