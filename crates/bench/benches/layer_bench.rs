//! Transformer-layer and full-step benchmarks: serial reference vs the 1D
//! (Megatron) and 2D (Optimus) schemes on real thread meshes at equal
//! global problem size (the executed analogue of Tables 2–3).

use criterion::{criterion_group, criterion_main, Criterion};
use megatron::{layer1d_forward, Layer1dParams, MegatronConfig, MegatronModel};
use mesh::{Group, Mesh, Mesh2d};
use optimus_core::{layer2d_forward, Layer2dParams, OptimusConfig, OptimusModel};
use serial::{layer_forward, LayerParams, ModelConfig, SerialModel};
use tensor::{Rng, Tensor};

fn model_cfg() -> ModelConfig {
    ModelConfig {
        batch: 4,
        seq: 32,
        hidden: 64,
        heads: 4,
        vocab: 128,
        layers: 2,
        causal: false,
    }
}

fn bench_layer_forward(c: &mut Criterion) {
    let cfg = model_cfg();
    let full = LayerParams::init(0, 0, cfg.hidden);
    let mut rng = Rng::new(0);
    let x = Tensor::randn(&[cfg.tokens(), cfg.hidden], 1.0, &mut rng);

    let mut group = c.benchmark_group("layer_forward");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| layer_forward(&cfg, &full, &x));
    });
    group.bench_function("megatron_p4", |b| {
        let mcfg = MegatronConfig::new(cfg, 4);
        b.iter(|| {
            Mesh::run(4, |ctx| {
                let world = Group::world(4);
                let p = Layer1dParams::from_full(&full, cfg.hidden, 4, ctx.rank());
                layer1d_forward(ctx, &world, &mcfg, &p, &x).0
            })
        });
    });
    group.bench_function("optimus_q2", |b| {
        let ocfg = OptimusConfig {
            q: 2,
            batch: cfg.batch,
            seq: cfg.seq,
            hidden: cfg.hidden,
            heads: cfg.heads,
            vocab: cfg.vocab,
            layers: cfg.layers,
            causal: false,
            checkpoint: false,
            fused_attention: false,
        };
        b.iter(|| {
            Mesh2d::run(2, |g| {
                let p = Layer2dParams::from_full(g, &full);
                layer2d_forward(g, &ocfg, &p, &summa::distribute(g, &x)).0
            })
        });
    });
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let cfg = model_cfg();
    let mut rng = Rng::new(1);
    let tokens: Vec<usize> = (0..cfg.tokens()).map(|_| rng.below(cfg.vocab)).collect();
    let labels: Vec<usize> = (0..cfg.tokens()).map(|_| rng.below(cfg.vocab)).collect();

    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        let mut m = SerialModel::new(cfg, 3);
        b.iter(|| m.train_step(&tokens, &labels, 0.01));
    });
    group.bench_function("megatron_p4", |b| {
        let mcfg = MegatronConfig::new(cfg, 4);
        b.iter(|| {
            Mesh::run(4, |ctx| {
                let mut m = MegatronModel::new(mcfg, 3, ctx);
                m.train_step(ctx, &tokens, &labels, 0.01)
            })
        });
    });
    group.bench_function("optimus_q2", |b| {
        let ocfg = OptimusConfig {
            q: 2,
            batch: cfg.batch,
            seq: cfg.seq,
            hidden: cfg.hidden,
            heads: cfg.heads,
            vocab: cfg.vocab,
            layers: cfg.layers,
            causal: false,
            checkpoint: false,
            fused_attention: false,
        };
        b.iter(|| {
            Mesh2d::run(2, |g| {
                let mut m = OptimusModel::new(&ocfg, 3, g);
                m.train_step(g, &tokens, &labels, 0.01)
            })
        });
    });
    group.finish();
}

criterion_group!(benches, bench_layer_forward, bench_train_step);
criterion_main!(benches);
