//! Single-device kernel benchmarks: the three matmul forms across sizes
//! (spanning the Rayon parallelisation threshold), plus the layer-level
//! primitives — the compute substrate whose achieved rate the `perf`
//! calibration abstracts as `mac_rate`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tensor::layernorm::{layer_norm_forward, LN_EPS};
use tensor::ops::gelu_forward;
use tensor::softmax::softmax_rows;
use tensor::{matmul_nn, matmul_nt, matmul_tn, Rng, Tensor};

fn bench_matmul_forms(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for &d in &[32usize, 128, 256] {
        let mut rng = Rng::new(0);
        let a = Tensor::randn(&[d, d], 1.0, &mut rng);
        let b = Tensor::randn(&[d, d], 1.0, &mut rng);
        group.throughput(Throughput::Elements((d * d * d) as u64));
        group.bench_with_input(BenchmarkId::new("nn", d), &d, |bch, _| {
            bch.iter(|| matmul_nn(&a, &b));
        });
        group.bench_with_input(BenchmarkId::new("nt", d), &d, |bch, _| {
            bch.iter(|| matmul_nt(&a, &b));
        });
        group.bench_with_input(BenchmarkId::new("tn", d), &d, |bch, _| {
            bch.iter(|| matmul_tn(&a, &b));
        });
    }
    group.finish();
}

fn bench_rectangular_shapes(c: &mut Criterion) {
    // Transformer-shaped products: activations [bs, h] x weights [h, 4h].
    let mut group = c.benchmark_group("matmul_transformer_shapes");
    group.sample_size(10);
    for &(bs, h) in &[(256usize, 64usize), (512, 128)] {
        let mut rng = Rng::new(1);
        let x = Tensor::randn(&[bs, h], 1.0, &mut rng);
        let w = Tensor::randn(&[h, 4 * h], 1.0, &mut rng);
        group.throughput(Throughput::Elements((bs * h * 4 * h) as u64));
        group.bench_with_input(
            BenchmarkId::new("fc1", format!("{bs}x{h}")),
            &bs,
            |bch, _| {
                bch.iter(|| matmul_nn(&x, &w));
            },
        );
    }
    group.finish();
}

fn bench_pointwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("pointwise");
    group.sample_size(20);
    let mut rng = Rng::new(2);
    let x = Tensor::randn(&[512, 512], 1.0, &mut rng);
    let gamma = vec![1.0f32; 512];
    let beta = vec![0.0f32; 512];
    group.throughput(Throughput::Elements((512 * 512) as u64));
    group.bench_function("gelu", |b| {
        b.iter(|| gelu_forward(&x));
    });
    group.bench_function("softmax_rows", |b| {
        b.iter(|| softmax_rows(&x));
    });
    group.bench_function("layer_norm", |b| {
        b.iter(|| layer_norm_forward(&x, &gamma, &beta, LN_EPS));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul_forms,
    bench_rectangular_shapes,
    bench_pointwise
);
criterion_main!(benches);
