//! Single-device kernel benchmarks: the three matmul forms across sizes
//! (spanning the thread-parallelisation threshold), plus the layer-level
//! primitives — the compute substrate whose achieved rate the `perf`
//! calibration abstracts as `mac_rate`.

use bench::bench_fn;
use tensor::layernorm::{layer_norm_forward, LN_EPS};
use tensor::ops::gelu_forward;
use tensor::softmax::softmax_rows;
use tensor::{matmul_nn, matmul_nt, matmul_tn, Rng, Tensor};

fn bench_matmul_forms() {
    for &d in &[32usize, 128, 256] {
        let mut rng = Rng::new(0);
        let a = Tensor::randn(&[d, d], 1.0, &mut rng);
        let b = Tensor::randn(&[d, d], 1.0, &mut rng);
        bench_fn("matmul", &format!("nn/{d}"), 10, || matmul_nn(&a, &b));
        bench_fn("matmul", &format!("nt/{d}"), 10, || matmul_nt(&a, &b));
        bench_fn("matmul", &format!("tn/{d}"), 10, || matmul_tn(&a, &b));
    }
}

fn bench_rectangular_shapes() {
    // Transformer-shaped products: activations [bs, h] x weights [h, 4h].
    for &(bs, h) in &[(256usize, 64usize), (512, 128)] {
        let mut rng = Rng::new(1);
        let x = Tensor::randn(&[bs, h], 1.0, &mut rng);
        let w = Tensor::randn(&[h, 4 * h], 1.0, &mut rng);
        bench_fn(
            "matmul_transformer_shapes",
            &format!("fc1/{bs}x{h}"),
            10,
            || matmul_nn(&x, &w),
        );
    }
}

fn bench_pointwise() {
    let mut rng = Rng::new(2);
    let x = Tensor::randn(&[512, 512], 1.0, &mut rng);
    let gamma = vec![1.0f32; 512];
    let beta = vec![0.0f32; 512];
    bench_fn("pointwise", "gelu", 20, || gelu_forward(&x));
    bench_fn("pointwise", "softmax_rows", 20, || softmax_rows(&x));
    bench_fn("pointwise", "layer_norm", 20, || {
        layer_norm_forward(&x, &gamma, &beta, LN_EPS)
    });
}

fn main() {
    bench_matmul_forms();
    bench_rectangular_shapes();
    bench_pointwise();
}
